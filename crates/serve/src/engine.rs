//! The batched request engine: the serving front door.
//!
//! SpMV is shared-bandwidth-bound, so the cheapest request a server can
//! run is one it can merge with another: a `k`-vector SpMM call streams
//! the matrix arrays once for `k` products (measured 1.41–1.90× per-
//! vector amortization in this workspace). The engine exploits that by
//! **coalescing**: submissions land in one bounded queue; a dedicated
//! dispatcher thread drains it, groups requests by matrix, greedily
//! chunks each group into the kernel-specialized widths `k ∈ {8, 4, 2,
//! 1}`, and runs each chunk as a single [`SpMvMulti::spmv_multi`] call
//! on the registry's prepared matrix.
//!
//! Everything is async-free std: submission is a mutex push + condvar
//! notify, completion a per-request slot the caller blocks on through
//! [`Ticket::wait`]. **Admission control** is reject-not-block: when the
//! queue holds `capacity` requests, [`ServeEngine::submit`] returns
//! [`ServeError::Saturated`] immediately instead of wedging the caller
//! behind a slow dispatcher.
//!
//! With telemetry recording enabled the engine emits `serve.enqueue`
//! (submit call, arg = queue depth after the push), `serve.batch` (one
//! coalesced chunk: assemble + dispatch + complete, arg = k),
//! `serve.dispatch` (the SpMM call alone, arg = k), and `serve.request`
//! (one request's full submit→complete latency, arg = matrix id) spans.
//! The engine also keeps its own latency record so
//! [`ServeEngine::report`] can summarize p50/p95/p99 even in
//! telemetry-disabled builds.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::{MatrixId, PreparedMatrix, Registry};
use spmv_core::{MatrixShape, SpMvMulti};
use spmv_kernels::simd::SimdScalar;

/// The chunk widths the dispatcher may emit, widest first — these are
/// exactly the widths the SpMM kernels specialize.
const CHUNK_WIDTHS: [usize; 4] = [8, 4, 2, 1];

/// How a submission or a request can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue already holds `capacity` requests; the request
    /// was rejected, not queued. Back off and retry.
    Saturated {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// No matrix is published under this id.
    UnknownMatrix(MatrixId),
    /// The input vector length does not match the matrix column count.
    BadLength {
        /// Required length (`n_cols`).
        expected: usize,
        /// Submitted length.
        got: usize,
    },
    /// The engine is shutting down (or a request was abandoned mid-
    /// flight by a dispatcher failure).
    ShutDown,
    /// The dispatch kernel panicked; the request was not computed.
    DispatchPanicked,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { capacity } => {
                write!(f, "request queue saturated (capacity {capacity})")
            }
            ServeError::UnknownMatrix(id) => write!(f, "no matrix published under {id}"),
            ServeError::BadLength { expected, got } => {
                write!(f, "input vector length {got} != matrix columns {expected}")
            }
            ServeError::ShutDown => write!(f, "engine is shut down"),
            ServeError::DispatchPanicked => write!(f, "dispatch kernel panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Tuning knobs for a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Bounded queue size; submissions beyond it are rejected with
    /// [`ServeError::Saturated`].
    pub capacity: usize,
    /// The coalescing window: after waking on a non-empty queue the
    /// dispatcher sleeps this long before draining, so concurrent
    /// requests for the same matrix can pile into one batch. It is also
    /// the latency floor a lone request pays — keep it well under the
    /// matrix's own SpMV time. Zero dispatches immediately.
    pub window: Duration,
    /// Upper bound on the chunk width `k` (clamped to 8, the widest
    /// specialized kernel). 1 disables coalescing — every request runs
    /// as its own dispatch, the baseline `serve_load` compares against.
    pub max_batch: usize,
    /// Start with dispatching paused ([`ServeEngine::resume`] starts it);
    /// used by tests and drain-style maintenance.
    pub start_paused: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            capacity: 1024,
            window: Duration::from_micros(200),
            max_batch: 8,
            start_paused: false,
        }
    }
}

/// Where a request's result is delivered; the submitting side blocks on
/// it through [`Ticket::wait`].
struct ReplySlot<T> {
    result: Mutex<Option<Result<Vec<T>, ServeError>>>,
    cv: Condvar,
}

impl<T> ReplySlot<T> {
    fn new() -> Self {
        ReplySlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// First completion wins; later ones (e.g. the abandon guard racing a
    /// real completion) are dropped.
    fn complete(&self, r: Result<Vec<T>, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(r);
            self.cv.notify_all();
        }
    }
}

/// A handle to one in-flight request.
#[must_use = "a ticket is the only way to receive the request's result"]
pub struct Ticket<T> {
    slot: Arc<ReplySlot<T>>,
}

impl<T> Ticket<T> {
    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<Vec<T>, ServeError> {
        let mut slot = self.slot.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.slot.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Returns the result if the request has already completed, without
    /// blocking; the ticket stays usable otherwise.
    pub fn try_take(&self) -> Option<Result<Vec<T>, ServeError>> {
        self.slot
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }
}

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

/// One queued request.
struct Pending<T: SimdScalar> {
    id: MatrixId,
    prepared: Arc<PreparedMatrix<T>>,
    x: Vec<T>,
    submitted: Instant,
    submitted_ns: u64,
    slot: Arc<ReplySlot<T>>,
    completed: bool,
}

impl<T: SimdScalar> Pending<T> {
    fn complete(&mut self, stats: &Mutex<Stats>, r: Result<Vec<T>, ServeError>) {
        let latency = self.submitted.elapsed().as_nanos() as u64;
        spmv_telemetry::complete("serve.request", self.submitted_ns, latency, self.id.0);
        // Account *before* waking the waiter, so a report taken right
        // after `Ticket::wait` returns already counts this request.
        {
            let mut s = stats.lock().unwrap_or_else(|e| e.into_inner());
            if r.is_ok() {
                s.completed += 1;
                s.latencies_ns.push(latency);
            } else {
                s.failed += 1;
            }
        }
        self.slot.complete(r);
        self.completed = true;
    }
}

impl<T: SimdScalar> Drop for Pending<T> {
    fn drop(&mut self) {
        // Abandon guard: a request dropped before completion (dispatcher
        // panic, shutdown race) must not leave its waiter blocked
        // forever.
        if !self.completed {
            self.slot.complete(Err(ServeError::ShutDown));
        }
    }
}

/// Counters the engine keeps regardless of telemetry state.
#[derive(Debug, Clone, Default)]
struct Stats {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    batches: u64,
    /// Dispatches by chunk width, indexed by `log2(k)` for k in
    /// {1, 2, 4, 8}.
    by_width: [u64; 4],
    latencies_ns: Vec<u64>,
}

/// Latency percentiles over completed requests, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of completed requests summarized.
    pub count: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Slowest request.
    pub max_ns: u64,
}

/// A point-in-time copy of the engine's counters.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Coalesced chunks dispatched.
    pub batches: u64,
    /// Dispatch counts per chunk width `k` = 1, 2, 4, 8.
    pub dispatches_by_k: [(usize, u64); 4],
    /// Latency percentiles, when any request has completed.
    pub latency: Option<LatencySummary>,
}

impl EngineReport {
    /// Mean requests per dispatched batch — the realized coalescing
    /// factor (1.0 means no coalescing happened).
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.completed as f64 / self.batches as f64
    }
}

/// Nearest-rank percentile over an unsorted sample (copied + sorted).
fn percentiles(samples: &[u64]) -> Option<LatencySummary> {
    if samples.is_empty() {
        return None;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    let rank = |p: f64| {
        let idx = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[idx.clamp(1, v.len()) - 1]
    };
    Some(LatencySummary {
        count: v.len() as u64,
        p50_ns: rank(50.0),
        p95_ns: rank(95.0),
        p99_ns: rank(99.0),
        max_ns: *v.last().unwrap(),
    })
}

struct EngineShared<T: SimdScalar> {
    queue: Mutex<VecDeque<Pending<T>>>,
    /// Wakes the dispatcher on submit / resume / shutdown.
    cv: Condvar,
    paused: AtomicBool,
    shutdown: AtomicBool,
    stats: Mutex<Stats>,
}

/// The serving front door: accepts `y = A·x` submissions against a
/// shared [`Registry`] and dispatches them coalesced.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_model::Config;
/// use spmv_serve::{EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine};
///
/// let csr = Csr::from_coo(&Coo::from_triplets(3, 3, vec![
///     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0),
/// ]).unwrap());
/// let registry = Arc::new(Registry::new());
/// registry.publish(MatrixId(1), PreparedMatrix::from_config(Config::CSR, &csr));
///
/// let engine = ServeEngine::new(Arc::clone(&registry), EngineOptions::default());
/// let ticket = engine.submit(MatrixId(1), vec![1.0, 1.0, 1.0]).unwrap();
/// assert_eq!(ticket.wait().unwrap(), csr.spmv(&[1.0, 1.0, 1.0]));
///
/// // Convenience form for synchronous callers:
/// let y = engine.submit_wait(MatrixId(1), vec![2.0, 0.0, 0.0]).unwrap();
/// assert_eq!(y, vec![2.0, 0.0, 0.0]);
/// ```
pub struct ServeEngine<T: SimdScalar> {
    registry: Arc<Registry<T>>,
    shared: Arc<EngineShared<T>>,
    capacity: usize,
    handle: Option<JoinHandle<()>>,
}

impl<T: SimdScalar> ServeEngine<T> {
    /// Starts an engine (and its dispatcher thread) over `registry`.
    pub fn new(registry: Arc<Registry<T>>, opts: EngineOptions) -> Self {
        let shared = Arc::new(EngineShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            paused: AtomicBool::new(opts.start_paused),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(Stats::default()),
        });
        let dispatcher = Arc::clone(&shared);
        let window = opts.window;
        let max_batch = opts.max_batch.clamp(1, *CHUNK_WIDTHS.first().unwrap());
        let handle = std::thread::Builder::new()
            .name("spmv-serve-dispatch".into())
            .spawn(move || dispatcher_loop(dispatcher, window, max_batch))
            .expect("spawn serve dispatcher");
        ServeEngine {
            registry,
            shared,
            capacity: opts.capacity.max(1),
            handle: Some(handle),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<Registry<T>> {
        &self.registry
    }

    /// Submits `y = A·x` for the matrix published under `id`.
    ///
    /// Validates the id and vector length against the registry **now**
    /// (so errors surface at the submission site), captures the current
    /// prepared matrix, and enqueues. Returns the [`Ticket`] to wait on,
    /// or an error without queuing anything.
    pub fn submit(&self, id: MatrixId, x: Vec<T>) -> Result<Ticket<T>, ServeError> {
        let mut span = spmv_telemetry::span("serve.enqueue");
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShutDown);
        }
        let prepared = self.registry.get(id).ok_or(ServeError::UnknownMatrix(id))?;
        if x.len() != prepared.n_cols() {
            return Err(ServeError::BadLength {
                expected: prepared.n_cols(),
                got: x.len(),
            });
        }
        let slot = Arc::new(ReplySlot::new());
        let pending = Pending {
            id,
            prepared,
            x,
            submitted: Instant::now(),
            submitted_ns: spmv_telemetry::now_ns(),
            slot: Arc::clone(&slot),
            completed: false,
        };
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() >= self.capacity {
                drop(q);
                let mut s = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                s.rejected += 1;
                return Err(ServeError::Saturated {
                    capacity: self.capacity,
                });
            }
            q.push_back(pending);
            span.set_arg(q.len() as u64);
        }
        self.shared.cv.notify_all();
        let mut s = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        s.submitted += 1;
        Ok(Ticket { slot })
    }

    /// [`ServeEngine::submit`] + [`Ticket::wait`] in one call.
    pub fn submit_wait(&self, id: MatrixId, x: Vec<T>) -> Result<Vec<T>, ServeError> {
        self.submit(id, x)?.wait()
    }

    /// Requests currently queued (excludes in-flight dispatches).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Pauses dispatching; queued and newly submitted requests wait (or
    /// are rejected once the queue fills — admission control still
    /// applies).
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes dispatching after [`ServeEngine::pause`].
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
        self.shared.cv.notify_all();
    }

    /// A point-in-time copy of the engine's counters and latency
    /// percentiles.
    pub fn report(&self) -> EngineReport {
        let s = self.shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        EngineReport {
            submitted: s.submitted,
            rejected: s.rejected,
            completed: s.completed,
            failed: s.failed,
            batches: s.batches,
            dispatches_by_k: [
                (1, s.by_width[0]),
                (2, s.by_width[1]),
                (4, s.by_width[2]),
                (8, s.by_width[3]),
            ],
            latency: percentiles(&s.latencies_ns),
        }
    }

    /// Stops accepting submissions, lets the dispatcher drain everything
    /// already queued (pausing cannot hold the drain back), and joins it.
    /// Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: SimdScalar> Drop for ServeEngine<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<T: SimdScalar> fmt::Debug for ServeEngine<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeEngine")
            .field("capacity", &self.capacity)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// The dispatcher: wake on work, give the coalescing window a chance to
/// fill, drain, batch, dispatch, repeat until shut down and drained.
fn dispatcher_loop<T: SimdScalar>(
    shared: Arc<EngineShared<T>>,
    window: Duration,
    max_batch: usize,
) {
    loop {
        // Phase 1: wait for work (or shutdown).
        {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let down = shared.shutdown.load(Ordering::Acquire);
                if down && q.is_empty() {
                    return;
                }
                // Shutdown overrides pause: queued work must drain.
                if !q.is_empty() && (down || !shared.paused.load(Ordering::Acquire)) {
                    break;
                }
                let (g, _) = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                q = g;
            }
        }

        // Phase 2: the coalescing window — let concurrent submitters for
        // the same matrix land in this round's drain.
        if !window.is_zero() && !shared.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(window);
        }

        // Phase 3: drain and dispatch.
        let drained: Vec<Pending<T>> = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.drain(..).collect()
        };
        dispatch_round(&shared, drained, max_batch);
    }
}

/// Groups one drained round by (matrix id, prepared-matrix identity) in
/// arrival order and dispatches each group in greedy `{8,4,2,1}` chunks.
///
/// Grouping by the `Arc` pointer as well as the id keeps a batch on one
/// matrix *version*: if a publish landed mid-round, requests that
/// captured the old and the new version go into separate chunks instead
/// of sharing one SpMM call.
fn dispatch_round<T: SimdScalar>(
    shared: &EngineShared<T>,
    drained: Vec<Pending<T>>,
    max_batch: usize,
) {
    let mut groups: Vec<Vec<Pending<T>>> = Vec::new();
    let mut index: Vec<(u64, *const PreparedMatrix<T>, usize)> = Vec::new();
    for p in drained {
        let key = (p.id.0, Arc::as_ptr(&p.prepared));
        match index.iter().find(|&&(id, ptr, _)| (id, ptr) == key) {
            Some(&(_, _, g)) => groups[g].push(p),
            None => {
                index.push((key.0, key.1, groups.len()));
                groups.push(vec![p]);
            }
        }
    }
    for group in groups {
        dispatch_group(shared, group, max_batch);
    }
}

fn dispatch_group<T: SimdScalar>(
    shared: &EngineShared<T>,
    mut group: Vec<Pending<T>>,
    max_batch: usize,
) {
    while !group.is_empty() {
        let k = CHUNK_WIDTHS
            .iter()
            .copied()
            .find(|&k| k <= max_batch && k <= group.len())
            .expect("CHUNK_WIDTHS contains 1");
        let mut chunk: Vec<Pending<T>> = group.drain(..k).collect();
        let _batch_span = spmv_telemetry::span_with("serve.batch", k as u64);
        let prepared = Arc::clone(&chunk[0].prepared);
        let (m, n) = (prepared.n_cols(), prepared.n_rows());
        let mut x_cat = Vec::with_capacity(m * k);
        for p in &chunk {
            x_cat.extend_from_slice(&p.x);
        }
        let y = {
            let _dispatch_span = spmv_telemetry::span_with("serve.dispatch", k as u64);
            catch_unwind(AssertUnwindSafe(|| prepared.spmv_multi(&x_cat, k)))
        };
        match y {
            Ok(y) => {
                // Count the batch before waking any waiter (same ordering
                // rule as `Pending::complete`).
                {
                    let mut s = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    s.batches += 1;
                    s.by_width[k.trailing_zeros() as usize] += 1;
                }
                for (t, p) in chunk.iter_mut().enumerate() {
                    p.complete(&shared.stats, Ok(y[t * n..(t + 1) * n].to_vec()));
                }
            }
            Err(_) => {
                for p in chunk.iter_mut() {
                    p.complete(&shared.stats, Err(ServeError::DispatchPanicked));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::{Coo, Csr, SpMv};
    use spmv_model::Config;

    fn fixture(n: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, n);
        let mut state = 0xBADC0DEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
            for _ in 0..2 {
                let _ = coo.push(i, (next() as usize) % n, 1.0 + (next() % 3) as f64);
            }
        }
        Csr::from_coo(&coo)
    }

    fn setup(n: usize, opts: EngineOptions) -> (Csr<f64>, Arc<Registry<f64>>, ServeEngine<f64>) {
        let csr = fixture(n);
        let registry = Arc::new(Registry::new());
        registry.publish(MatrixId(1), PreparedMatrix::from_config(Config::CSR, &csr));
        let engine = ServeEngine::new(Arc::clone(&registry), opts);
        (csr, registry, engine)
    }

    #[test]
    fn single_request_roundtrip() {
        let (csr, _r, engine) = setup(17, EngineOptions::default());
        let x: Vec<f64> = (0..17).map(|i| 1.0 + i as f64).collect();
        assert_eq!(engine.submit_wait(MatrixId(1), x.clone()).unwrap(), csr.spmv(&x));
        let rep = engine.report();
        assert_eq!(rep.completed, 1);
        assert!(rep.latency.unwrap().p50_ns > 0);
    }

    #[test]
    fn unknown_matrix_and_bad_length_reject_at_submit() {
        let (_csr, _r, engine) = setup(5, EngineOptions::default());
        assert_eq!(
            engine.submit(MatrixId(9), vec![1.0; 5]).unwrap_err(),
            ServeError::UnknownMatrix(MatrixId(9))
        );
        assert_eq!(
            engine.submit(MatrixId(1), vec![1.0; 4]).unwrap_err(),
            ServeError::BadLength { expected: 5, got: 4 }
        );
        let rep = engine.report();
        assert_eq!(rep.submitted, 0);
    }

    #[test]
    fn greedy_chunking_covers_seven_requests_as_4_2_1() {
        let (csr, _r, engine) = setup(
            23,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let xs: Vec<Vec<f64>> = (0..7)
            .map(|t| (0..23).map(|i| (i + t) as f64).collect())
            .collect();
        let tickets: Vec<_> = xs
            .iter()
            .map(|x| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        engine.resume();
        for (x, t) in xs.iter().zip(tickets) {
            assert_eq!(t.wait().unwrap(), csr.spmv(x));
        }
        let rep = engine.report();
        assert_eq!(rep.completed, 7);
        assert_eq!(rep.batches, 3);
        assert_eq!(rep.dispatches_by_k, [(1, 1), (2, 1), (4, 1), (8, 0)]);
        assert!((rep.mean_batch_width() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_batch_one_disables_coalescing() {
        let (csr, _r, engine) = setup(
            11,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                max_batch: 1,
                ..EngineOptions::default()
            },
        );
        let x = vec![1.0; 11];
        let tickets: Vec<_> = (0..5)
            .map(|_| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        engine.resume();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), csr.spmv(&x));
        }
        let rep = engine.report();
        assert_eq!(rep.batches, 5);
        assert_eq!(rep.dispatches_by_k, [(1, 5), (2, 0), (4, 0), (8, 0)]);
    }

    #[test]
    fn saturated_queue_rejects_immediately() {
        let (_csr, _r, engine) = setup(
            9,
            EngineOptions {
                capacity: 3,
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let x = vec![1.0; 9];
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(engine.submit(MatrixId(1), x.clone()).unwrap());
        }
        let t0 = Instant::now();
        assert_eq!(
            engine.submit(MatrixId(1), x.clone()).unwrap_err(),
            ServeError::Saturated { capacity: 3 }
        );
        assert!(
            t0.elapsed() < Duration::from_millis(100),
            "rejection must not block"
        );
        engine.resume();
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        assert_eq!(engine.report().rejected, 1);
    }

    #[test]
    fn shutdown_drains_queued_requests_then_rejects() {
        let (csr, _r, mut engine) = setup(
            13,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let x = vec![2.0; 13];
        let tickets: Vec<_> = (0..4)
            .map(|_| engine.submit(MatrixId(1), x.clone()).unwrap())
            .collect();
        // Shutdown must drain even though the engine is paused.
        engine.shutdown();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), csr.spmv(&x));
        }
        assert_eq!(
            engine.submit(MatrixId(1), x).unwrap_err(),
            ServeError::ShutDown
        );
    }

    #[test]
    fn try_take_is_nonblocking() {
        let (_csr, _r, engine) = setup(
            7,
            EngineOptions {
                start_paused: true,
                window: Duration::ZERO,
                ..EngineOptions::default()
            },
        );
        let t = engine.submit(MatrixId(1), vec![1.0; 7]).unwrap();
        assert!(t.try_take().is_none());
        engine.resume();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(r) = t.try_take() {
                assert!(r.is_ok());
                break;
            }
            assert!(Instant::now() < deadline, "request never completed");
            std::thread::yield_now();
        }
    }

    #[test]
    fn percentile_ranks_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = percentiles(&samples).unwrap();
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(percentiles(&[]), None);
        let one = percentiles(&[7]).unwrap();
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
    }
}
