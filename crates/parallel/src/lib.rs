#![warn(missing_docs)]

//! Multithreaded SpMV: static nnz-balanced row partitioning plus a
//! strip-per-thread execution driver.
//!
//! Reproduces the paper's multithreaded setup (§V-A): row-wise split into
//! as many portions as threads, statically balanced so every thread gets
//! the same number of *stored* elements — for padded formats that count
//! includes the padding zeros. [`partition`] computes the weights and the
//! split; [`ParallelSpmv`] owns the per-thread strips and runs them with
//! scoped threads.

pub mod driver;
pub mod partition;

pub use driver::ParallelSpmv;
pub use partition::{
    bcsd_unit_weights, bcsr_unit_weights, csr_unit_weights, partition_units, units_to_rows,
};
