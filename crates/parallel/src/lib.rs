#![warn(missing_docs)]

//! Multithreaded SpMV: static nnz-balanced row partitioning plus two
//! execution drivers — scoped threads for one-shot multiplies and a
//! persistent, optionally core-pinned worker pool for repeated ones.
//!
//! Reproduces the paper's multithreaded setup (§V-A): row-wise split into
//! as many portions as threads, statically balanced so every thread gets
//! the same number of *stored* elements — for padded formats that count
//! includes the padding zeros. [`partition`] computes the weights and the
//! split; [`ParallelSpmv`] runs the strips with per-call scoped threads;
//! [`SpmvPool`] hosts the same strips on long-lived workers driven by an
//! epoch barrier, with optional core pinning ([`affinity`]) and per-strip
//! timing hooks for the multicore model.
//!
//! # Which driver?
//!
//! | | [`ParallelSpmv`] | [`SpmvPool`] |
//! |---|---|---|
//! | threads | spawned per call | spawned once, reused |
//! | per-call cost | spawn + join per strip | epoch barrier (spin-then-park) |
//! | pinning | no | [`PinPolicy`] |
//! | timing hooks | no | [`StripReport`] per strip |
//! | best for | a single multiply | solvers, benchmarks, services |
//!
//! # Example
//!
//! ```
//! use spmv_core::{Coo, Csr, SpMv};
//! use spmv_parallel::{csr_unit_weights, PinPolicy, SpmvPool};
//!
//! let csr = Csr::from_coo(&Coo::from_triplets(3, 3, vec![
//!     (0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0),
//! ]).unwrap());
//! // Two persistent workers, balanced by per-row nonzeros.
//! let pool = SpmvPool::from_csr(
//!     &csr, 2, &csr_unit_weights(&csr), 1, Csr::clone, PinPolicy::None,
//! );
//! assert_eq!(pool.spmv(&[1.0, 1.0, 1.0]), csr.spmv(&[1.0, 1.0, 1.0]));
//! ```

pub mod affinity;
pub mod driver;
pub mod partition;
pub mod pool;
pub mod topology;

pub use affinity::{run_pinned, PinPolicy};
pub use driver::ParallelSpmv;
pub use partition::{
    bcsd_unit_weights, bcsr_unit_weights, csr_unit_weights, heavy_unit, partition_units,
    sell_unit_weights, split_segments, units_to_rows,
};
pub use pool::{Placement, SpmvPool, StripReport};
pub use topology::Topology;
