//! Static, weight-balanced row partitioning.
//!
//! "In order to assign work to threads, we have split the input matrix
//! row-wise in as many portions as threads … such that each thread is
//! assigned the same number of nonzeros. Specifically, for the case of
//! methods with padding, we also accounted for the extra zero elements
//! used for the padding" (§V-A). This module implements that scheme:
//! contiguous unit ranges (rows, block rows, or segments) balanced by a
//! weight per unit, where the weight is the *stored* element count —
//! padding included.

use core::ops::Range;
use spmv_core::{Csr, MatrixShape, Scalar};
use spmv_kernels::BlockShape;

/// Splits `0..weights.len()` into `parts` contiguous ranges whose weight
/// totals are as even as a greedy prefix scan can make them.
///
/// Every range is returned (possibly empty at the tail) so callers can
/// zip them with threads. The greedy rule assigns units to the current
/// part until its running total reaches the ideal share, then advances —
/// the same static scheme the paper uses.
///
/// # Invariants
///
/// * exactly `parts` ranges are returned;
/// * they are sorted, contiguous (`r[i].end == r[i+1].start`), start at
///   0, and end at `weights.len()` — every unit lands in exactly one
///   range;
/// * ranges may be **empty** (more parts than units, or zero-weight
///   tails); both drivers drop empty ranges before spawning threads,
///   so a strip is never empty;
/// * no part overshoots the ideal share `total/parts` by more than one
///   unit's weight.
///
/// ```
/// use spmv_parallel::partition_units;
/// // 6 units, the heavy one (8) forces an uneven split: 8 | 2,2 | 2,2,2.
/// let ranges = partition_units(&[8, 2, 2, 2, 2, 2], 3);
/// assert_eq!(ranges, vec![0..1, 1..3, 3..6]);
/// // More parts than units: tails come back empty and must be filtered.
/// let ranges = partition_units(&[5, 5], 4);
/// assert_eq!(ranges.iter().filter(|r| !r.is_empty()).count(), 2);
/// ```
pub fn partition_units(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "at least one partition required");
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    for p in 0..parts {
        let mut end = start;
        if p == parts - 1 {
            // The final part takes the remainder.
            end = weights.len();
        } else {
            // Advance until the cumulative weight reaches part p's ideal
            // cumulative share.
            let target = total * (p as u64 + 1) / parts as u64;
            while end < weights.len() && acc < target {
                acc += weights[end];
                end += 1;
            }
        }
        out.push(start..end);
        start = end;
    }
    debug_assert_eq!(out.last().map(|r| r.end), Some(weights.len()));
    out
}

/// The index of a unit too heavy for any static row-granular split: the
/// (first) maximum-weight unit, iff its weight alone **exceeds** the
/// ideal share `total / parts`.
///
/// Such a unit forces the strip that holds it past the balance bound no
/// matter where the boundaries fall, so the pool's nnz-split fallback
/// shears it across workers instead (Bergmans et al., arXiv:2502.19284,
/// motivate nonzero-level splitting for exactly these rows). Returns
/// `None` for `parts <= 1` (nothing to balance against) and whenever
/// every unit fits the ideal share — i.e. for every matrix the plain
/// partition already handles well.
///
/// ```
/// use spmv_parallel::heavy_unit;
/// // One row holds 90 of 100 nonzeros: ideal share at 4 parts is 25.
/// assert_eq!(heavy_unit(&[2, 90, 3, 5], 4), Some(1));
/// assert_eq!(heavy_unit(&[25, 25, 25, 25], 4), None);
/// assert_eq!(heavy_unit(&[2, 90, 3, 5], 1), None);
/// ```
pub fn heavy_unit(weights: &[u64], parts: usize) -> Option<usize> {
    if parts <= 1 || weights.is_empty() {
        return None;
    }
    let (idx, &max) = weights
        .iter()
        .enumerate()
        .max_by_key(|&(_, &w)| w)?;
    let total: u64 = weights.iter().sum();
    // Strict inequality on the cross-multiplied form: max > total/parts
    // without integer-division truncation.
    (max as u128 * parts as u128 > total as u128).then_some(idx)
}

/// Splits `0..nnz` into `parts` contiguous, near-equal segments (sizes
/// differ by at most one, larger segments first). The segment list a
/// sheared heavy row's nonzeros are dealt to workers with; segments may
/// be empty when `parts > nnz`.
///
/// ```
/// use spmv_parallel::split_segments;
/// assert_eq!(split_segments(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(split_segments(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
/// ```
pub fn split_segments(nnz: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "at least one segment required");
    let base = nnz / parts;
    let extra = nnz % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, nnz);
    out
}

/// Converts unit ranges (units of `unit_height` rows) into row ranges,
/// clamping the final range to `n_rows`.
///
/// # Invariants
///
/// * every produced `start` is a multiple of `unit_height` — a blocked
///   strip never begins mid-block, so BCSR block rows and BCSD segments
///   are never split across threads;
/// * ends are clamped to `n_rows`, so the last strip absorbs a final
///   partial unit when `n_rows % unit_height != 0`.
///
/// ```
/// use spmv_parallel::units_to_rows;
/// // 4 units of height 3 over 10 rows: the tail clamps to 10.
/// let rows = units_to_rows(&[0..2, 2..4], 3, 10);
/// assert_eq!(rows, vec![0..6, 6..10]);
/// assert!(rows.iter().all(|r| r.start % 3 == 0));
/// ```
pub fn units_to_rows(
    unit_ranges: &[Range<usize>],
    unit_height: usize,
    n_rows: usize,
) -> Vec<Range<usize>> {
    unit_ranges
        .iter()
        .map(|r| (r.start * unit_height).min(n_rows)..(r.end * unit_height).min(n_rows))
        .collect()
}

/// Per-row weights for CSR: the nonzero count of each row
/// (`unit_height = 1`; CSR stores no padding, so weight = nnz).
///
/// ```
/// use spmv_core::{Coo, Csr};
/// use spmv_parallel::csr_unit_weights;
/// let csr = Csr::from_coo(&Coo::from_triplets(3, 3, vec![
///     (0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0),
/// ]).unwrap());
/// assert_eq!(csr_unit_weights(&csr), vec![2, 0, 1]);
/// ```
pub fn csr_unit_weights<T: Scalar>(csr: &Csr<T>) -> Vec<u64> {
    (0..csr.n_rows()).map(|i| csr.row_nnz(i) as u64).collect()
}

/// Per-block-row weights for BCSR: stored elements including padding
/// (`blocks_in_block_row * r * c`). Partitioning block rows keeps strip
/// boundaries aligned, so no block is ever split across threads.
///
/// # Invariants
///
/// * one weight per block row (`unit_height = shape.rows()`), i.e.
///   `ceil(n_rows / r)` weights;
/// * each weight counts **stored** elements — `r·c` per touched block —
///   so it is always ≥ the raw nonzero count of those rows (§V-A: "we
///   also accounted for the extra zero elements used for the padding").
///
/// ```
/// use spmv_core::{Coo, Csr};
/// use spmv_kernels::BlockShape;
/// use spmv_parallel::bcsr_unit_weights;
/// // One lone nonzero per 2x4 block row still weighs a full 8-element block.
/// let csr = Csr::from_coo(&Coo::from_triplets(4, 8, vec![
///     (0, 0, 1.0), (2, 5, 1.0),
/// ]).unwrap());
/// let w = bcsr_unit_weights(&csr, BlockShape::new(2, 4).unwrap());
/// assert_eq!(w, vec![8, 8]);
/// ```
pub fn bcsr_unit_weights<T: Scalar>(csr: &Csr<T>, shape: BlockShape) -> Vec<u64> {
    let (r, c) = (shape.rows(), shape.cols());
    let n_rows = csr.n_rows();
    let n_brows = n_rows.div_ceil(r);
    let n_bcols = csr.n_cols().div_ceil(c);
    let mut seen = vec![u32::MAX; n_bcols];
    let mut weights = vec![0u64; n_brows];
    for (rb, w) in weights.iter_mut().enumerate() {
        let stamp = rb as u32;
        let mut nb = 0u64;
        for i in rb * r..((rb + 1) * r).min(n_rows) {
            for &j in csr.row(i).0 {
                let bc = j as usize / c;
                if seen[bc] != stamp {
                    seen[bc] = stamp;
                    nb += 1;
                }
            }
        }
        *w = nb * (r * c) as u64;
    }
    weights
}

/// Per-segment weights for BCSD: stored elements including padding
/// (`blocks_in_segment * b`).
///
/// # Invariants
///
/// * one weight per height-`b` row segment (`unit_height = b`), i.e.
///   `ceil(n_rows / b)` weights;
/// * each weight counts stored elements — `b` per touched diagonal,
///   including diagonals clipped by the matrix edge — so, like
///   [`bcsr_unit_weights`], it dominates the raw nonzero count.
///
/// ```
/// use spmv_core::{Coo, Csr};
/// use spmv_parallel::bcsd_unit_weights;
/// // Two nonzeros on the same diagonal of one segment: one block of 2.
/// let csr = Csr::from_coo(&Coo::from_triplets(2, 4, vec![
///     (0, 1, 1.0), (1, 2, 1.0),
/// ]).unwrap());
/// assert_eq!(bcsd_unit_weights(&csr, 2), vec![2]);
/// ```
pub fn bcsd_unit_weights<T: Scalar>(csr: &Csr<T>, b: usize) -> Vec<u64> {
    let n_rows = csr.n_rows();
    let n_segs = n_rows.div_ceil(b);
    let mut seen = vec![u32::MAX; csr.n_cols() + b];
    let mut weights = vec![0u64; n_segs];
    for (s, w) in weights.iter_mut().enumerate() {
        let stamp = s as u32;
        let mut nb = 0u64;
        for i in s * b..((s + 1) * b).min(n_rows) {
            let t = i - s * b;
            for &j in csr.row(i).0 {
                let biased = (j as i64 - t as i64 + b as i64) as usize;
                if seen[biased] != stamp {
                    seen[biased] = stamp;
                    nb += 1;
                }
            }
        }
        *w = nb * b as u64;
    }
    weights
}

/// Per-unit weights for SELL-C-σ: stored elements including padding for
/// each unit of `c` consecutive rows (`c * max row nnz` in the unit).
///
/// Strips partitioned on these units start at multiples of `c`, so each
/// worker's local SELL conversion (with its own σ windows and row
/// permutation over its contiguous strip) begins on a slice boundary.
/// The weight assumes the unit becomes one slice of width
/// `max row nnz`; a strip's σ-windowed sort can only narrow its slices
/// further, so this is a conservative (≥ stored) balancing estimate.
///
/// ```
/// use spmv_core::{Coo, Csr};
/// use spmv_parallel::sell_unit_weights;
/// // Rows of length 3 and 1 share a 2-row slice: both pad to width 3.
/// let csr = Csr::from_coo(&Coo::from_triplets(3, 4, vec![
///     (0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 0, 1.0),
/// ]).unwrap());
/// assert_eq!(sell_unit_weights(&csr, 2), vec![6, 2]);
/// ```
pub fn sell_unit_weights<T: Scalar>(csr: &Csr<T>, c: usize) -> Vec<u64> {
    let n_rows = csr.n_rows();
    let n_units = n_rows.div_ceil(c);
    let mut weights = vec![0u64; n_units];
    for (u, w) in weights.iter_mut().enumerate() {
        let width = (u * c..((u + 1) * c).min(n_rows))
            .map(|i| csr.row_nnz(i))
            .max()
            .unwrap_or(0);
        *w = (width * c) as u64;
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    #[test]
    fn partitions_cover_everything_contiguously() {
        let w = vec![1u64; 100];
        for parts in 1..=7 {
            let ranges = partition_units(&w, parts);
            assert_eq!(ranges.len(), parts);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 100);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let w = vec![1u64; 100];
        let ranges = partition_units(&w, 4);
        for r in &ranges {
            assert_eq!(r.len(), 25);
        }
    }

    #[test]
    fn skewed_weights_balance_by_weight_not_count() {
        // First 10 units carry all the weight.
        let mut w = vec![0u64; 100];
        for v in w.iter_mut().take(10) {
            *v = 100;
        }
        let ranges = partition_units(&w, 2);
        let first: u64 = w[ranges[0].clone()].iter().sum();
        let second: u64 = w[ranges[1].clone()].iter().sum();
        assert!(first.abs_diff(second) <= 100, "{first} vs {second}");
    }

    #[test]
    fn single_partition_takes_all() {
        let ranges = partition_units(&[3, 1, 4], 1);
        assert_eq!(ranges, vec![0..3]);
    }

    #[test]
    fn more_parts_than_units_yields_empty_tails() {
        let ranges = partition_units(&[5, 5], 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges.last().unwrap().end, 2);
        let nonempty: usize = ranges.iter().filter(|r| !r.is_empty()).count();
        assert!(nonempty >= 1);
    }

    #[test]
    fn zero_weight_units_do_not_break_partitioning() {
        let ranges = partition_units(&[0, 0, 0, 0], 2);
        assert_eq!(ranges.last().unwrap().end, 4);
    }

    #[test]
    fn units_to_rows_clamps_tail() {
        let unit_ranges = vec![0..2, 2..4];
        // 4 units of height 3 over 10 rows: last row range clamps to 10.
        let rows = units_to_rows(&unit_ranges, 3, 10);
        assert_eq!(rows, vec![0..6, 6..10]);
    }

    #[test]
    fn padded_weights_exceed_raw_nnz() {
        // One isolated entry per block row: weight must count the full
        // padded block, not the single nonzero.
        let csr = Csr::from_coo(
            &Coo::from_triplets(8, 8, vec![(0, 0, 1.0), (2, 3, 1.0), (4, 7, 1.0)]).unwrap(),
        );
        let w = bcsr_unit_weights(&csr, BlockShape::new(2, 4).unwrap());
        assert_eq!(w, vec![8, 8, 8, 0]);
        let wd = bcsd_unit_weights(&csr, 2);
        assert_eq!(wd, vec![2, 2, 2, 0]);
    }

    #[test]
    fn heavy_unit_triggers_only_past_the_ideal_share() {
        // Exactly the ideal share is fine; one more nonzero trips it.
        assert_eq!(heavy_unit(&[25, 25, 25, 25], 4), None);
        assert_eq!(heavy_unit(&[26, 25, 25, 24], 4), Some(0));
        assert_eq!(heavy_unit(&[], 4), None);
        assert_eq!(heavy_unit(&[100], 1), None);
        // All weight in one unit: always heavy for parts > 1.
        assert_eq!(heavy_unit(&[0, 7, 0], 3), Some(1));
    }

    #[test]
    fn split_segments_cover_contiguously_with_near_equal_sizes() {
        for nnz in [0usize, 1, 2, 7, 10, 33] {
            for parts in 1..=5 {
                let segs = split_segments(nnz, parts);
                assert_eq!(segs.len(), parts);
                assert_eq!(segs[0].start, 0);
                assert_eq!(segs.last().unwrap().end, nnz);
                for pair in segs.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start);
                }
                let (min, max) = segs
                    .iter()
                    .fold((usize::MAX, 0), |(lo, hi), r| (lo.min(r.len()), hi.max(r.len())));
                assert!(max - min <= 1, "nnz={nnz} parts={parts}: {segs:?}");
            }
        }
    }

    #[test]
    fn sell_weights_count_padded_slices() {
        // Unit 0 (rows 0-1) pads both rows to width 3; unit 1 (row 2,
        // tail) still weighs a full 2-lane slice.
        let csr = Csr::from_coo(
            &Coo::from_triplets(
                3,
                4,
                vec![(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 0, 1.0)],
            )
            .unwrap(),
        );
        assert_eq!(sell_unit_weights(&csr, 2), vec![6, 2]);
        let nnz: u64 = csr_unit_weights(&csr).iter().sum();
        assert!(sell_unit_weights(&csr, 2).iter().sum::<u64>() >= nnz);
    }

    #[test]
    fn csr_weights_are_row_nnz() {
        let csr = Csr::from_coo(
            &Coo::from_triplets(3, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)]).unwrap(),
        );
        assert_eq!(csr_unit_weights(&csr), vec![2, 0, 1]);
    }
}
