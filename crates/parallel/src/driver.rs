//! The one-shot multithreaded SpMV driver (scoped threads).
//!
//! [`ParallelSpmv`] spawns a scoped thread per strip on **every** call —
//! the right trade-off for a single multiply, where paying a pool's
//! standing workers would not amortize. For repeated SpMV (iterative
//! solvers, benchmarking loops), use [`crate::SpmvPool`], which hosts
//! the same strips on persistent, optionally core-pinned workers and
//! eliminates the per-call spawn/join cost.

use core::ops::Range;
use spmv_core::{Csr, MatrixShape, Scalar, SpMv, SpMvMulti};

/// One thread's share of the matrix: a contiguous row strip converted to
/// the format under test.
#[derive(Debug, Clone)]
struct Strip<F> {
    rows: Range<usize>,
    mat: F,
}

/// A row-partitioned matrix executing SpMV with one scoped thread per
/// strip, spawned fresh on every call.
///
/// Mirrors the paper's multithreaded setup (§V-A): the input matrix is
/// split row-wise into as many contiguous strips as threads, each strip
/// is stored independently in the format under test, and every SpMV runs
/// all strips concurrently into disjoint slices of the output vector.
/// The input vector is shared read-only.
///
/// Strips with no rows are dropped at construction, so `n_strips() ≤
/// n_threads` and every surviving strip is non-empty — `n_threads`
/// larger than the unit count (or an empty matrix) degrades gracefully.
/// A single surviving strip executes inline with no thread spawn at all.
///
/// This type is the *one-shot fallback*; [`crate::SpmvPool`] reuses the
/// same strips on persistent workers for repeated multiplies (convert
/// with [`crate::SpmvPool::from_parallel`]).
///
/// ```
/// use spmv_core::{Coo, Csr, SpMv};
/// use spmv_parallel::ParallelSpmv;
/// use spmv_parallel::partition::csr_unit_weights;
///
/// let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![
///     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0),
/// ]).unwrap());
/// let par = ParallelSpmv::from_csr(&csr, 2, &csr_unit_weights(&csr), 1, |s| s.clone());
/// assert_eq!(par.spmv(&[1.0; 4]), csr.spmv(&[1.0; 4]));
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSpmv<F> {
    strips: Vec<Strip<F>>,
    n_rows: usize,
    n_cols: usize,
}

impl<F> ParallelSpmv<F> {
    /// Partitions `csr` into `n_threads` strips balanced by `unit_weights`
    /// (one weight per unit of `unit_height` rows — padding-aware weights
    /// come from [`crate::partition`]), then converts each strip with
    /// `build`.
    ///
    /// `unit_height` keeps strip boundaries aligned to block rows or
    /// segments, so blocked strips never split a block.
    pub fn from_csr<T: Scalar>(
        csr: &Csr<T>,
        n_threads: usize,
        unit_weights: &[u64],
        unit_height: usize,
        build: impl Fn(&Csr<T>) -> F,
    ) -> Self {
        assert!(n_threads > 0, "at least one thread required");
        assert_eq!(
            unit_weights.len(),
            csr.n_rows().div_ceil(unit_height),
            "one weight per unit expected"
        );
        let unit_ranges = crate::partition::partition_units(unit_weights, n_threads);
        let row_ranges =
            crate::partition::units_to_rows(&unit_ranges, unit_height, csr.n_rows());
        let strips = row_ranges
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|rows| Strip {
                mat: build(&csr.row_slice(rows.clone())),
                rows,
            })
            .collect();
        ParallelSpmv {
            strips,
            n_rows: csr.n_rows(),
            n_cols: csr.n_cols(),
        }
    }

    /// Number of non-empty strips (≤ requested threads).
    pub fn n_strips(&self) -> usize {
        self.strips.len()
    }

    /// The row ranges assigned to each strip.
    pub fn strip_rows(&self) -> Vec<Range<usize>> {
        self.strips.iter().map(|s| s.rows.clone()).collect()
    }

    /// Decomposes into `(rows, strip)` pairs plus the overall shape, so
    /// [`crate::SpmvPool`] can re-host the strips on persistent workers.
    pub(crate) fn into_parts(self) -> (Vec<(Range<usize>, F)>, usize, usize) {
        let strips = self
            .strips
            .into_iter()
            .map(|s| (s.rows, s.mat))
            .collect();
        (strips, self.n_rows, self.n_cols)
    }
}

impl<F> MatrixShape for ParallelSpmv<F> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: Scalar, F: SpMv<T> + Sync> SpMv<T> for ParallelSpmv<F> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        match self.strips.as_slice() {
            // No strips (0×m matrix, or every partition came up empty):
            // nothing to compute, every row is zero. Never enters
            // `thread::scope`.
            [] => y.fill(T::ZERO),
            // Single strip: run inline — no slice bookkeeping, no
            // thread-spawn overhead.
            [strip] => {
                y[..strip.rows.start].fill(T::ZERO);
                y[strip.rows.end..].fill(T::ZERO);
                strip.mat.spmv_into(x, &mut y[strip.rows.clone()]);
            }
            strips => {
                // Split y into per-strip disjoint slices (strips are
                // sorted and contiguous by construction).
                let mut slices: Vec<(&Strip<F>, &mut [T])> = Vec::with_capacity(strips.len());
                let mut rest = y;
                let mut offset = 0usize;
                for strip in strips {
                    let (skip, tail) = rest.split_at_mut(strip.rows.start - offset);
                    skip.fill(T::ZERO); // rows not covered by any strip are zero
                    let (mine, tail) = tail.split_at_mut(strip.rows.len());
                    slices.push((strip, mine));
                    rest = tail;
                    offset = strip.rows.end;
                }
                rest.fill(T::ZERO);
                std::thread::scope(|scope| {
                    for (strip, ys) in slices {
                        scope.spawn(move || strip.mat.spmv_into(x, ys));
                    }
                });
            }
        }
    }

    fn nnz_stored(&self) -> usize {
        self.strips.iter().map(|s| s.mat.nnz_stored()).sum()
    }

    fn matrix_bytes(&self) -> usize {
        self.strips.iter().map(|s| s.mat.matrix_bytes()).sum()
    }
}

impl<T: Scalar, F: SpMvMulti<T> + Sync> SpMvMulti<T> for ParallelSpmv<F> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        let n = self.n_rows;
        match self.strips.as_slice() {
            [] => y.fill(T::ZERO),
            // Single strip: run inline into a strip-local block, then
            // scatter its columns into the full-height output.
            [strip] => {
                y.fill(T::ZERO);
                let h = strip.rows.len();
                let mut tmp = vec![T::ZERO; h * k];
                strip.mat.spmv_multi_into(x, &mut tmp, k);
                for t in 0..k {
                    y[t * n + strip.rows.start..t * n + strip.rows.end]
                        .copy_from_slice(&tmp[t * h..(t + 1) * h]);
                }
            }
            strips => {
                // Each strip's k output columns interleave in y, so the
                // threads compute into private strip-local blocks and the
                // driver scatters them after the join.
                y.fill(T::ZERO);
                let blocks: Vec<Vec<T>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = strips
                        .iter()
                        .map(|strip| {
                            scope.spawn(move || {
                                let mut tmp = vec![T::ZERO; strip.rows.len() * k];
                                strip.mat.spmv_multi_into(x, &mut tmp, k);
                                tmp
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("strip thread")).collect()
                });
                for (strip, tmp) in strips.iter().zip(&blocks) {
                    let h = strip.rows.len();
                    for t in 0..k {
                        y[t * n + strip.rows.start..t * n + strip.rows.end]
                            .copy_from_slice(&tmp[t * h..(t + 1) * h]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{bcsr_unit_weights, csr_unit_weights};
    use spmv_core::Coo;
    use spmv_formats::Bcsr;
    use spmv_kernels::{BlockShape, KernelImpl};

    fn fixture(n: usize, m: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for _ in 0..1 + (next() as usize) % 5 {
                let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 7) as f64);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn parallel_csr_matches_sequential() {
        let csr = fixture(101, 77);
        let x: Vec<f64> = (0..77).map(|i| 1.0 + (i % 9) as f64).collect();
        let want = csr.spmv(&x);
        for threads in [1, 2, 4, 8] {
            let par =
                ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
            assert_eq!(par.spmv(&x), want, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_bcsr_matches_sequential() {
        let csr = fixture(90, 64);
        let shape = BlockShape::new(2, 3).unwrap();
        let x: Vec<f64> = (0..64).map(|i| 0.5 + (i % 4) as f64).collect();
        let want = csr.spmv(&x);
        for threads in [1, 2, 4] {
            let par = ParallelSpmv::from_csr(
                &csr,
                threads,
                &bcsr_unit_weights(&csr, shape),
                shape.rows(),
                |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
            );
            let got = par.spmv(&x);
            for (a, g) in want.iter().zip(&got) {
                assert!((a - g).abs() < 1e-9, "threads = {threads}");
            }
        }
    }

    #[test]
    fn strip_boundaries_respect_block_alignment() {
        let csr = fixture(97, 50);
        let shape = BlockShape::new(4, 2).unwrap();
        let par = ParallelSpmv::from_csr(
            &csr,
            3,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
        );
        for rows in par.strip_rows() {
            assert_eq!(rows.start % 4, 0, "strip start must be block-aligned");
        }
    }

    #[test]
    fn more_threads_than_rows() {
        let csr = fixture(3, 5);
        let par = ParallelSpmv::from_csr(&csr, 16, &csr_unit_weights(&csr), 1, Csr::clone);
        assert!(par.n_strips() <= 3);
        let x = vec![1.0; 5];
        assert_eq!(par.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn nnz_and_bytes_aggregate_over_strips() {
        let csr = fixture(60, 60);
        let par = ParallelSpmv::from_csr(&csr, 4, &csr_unit_weights(&csr), 1, Csr::clone);
        assert_eq!(par.nnz_stored(), csr.nnz());
        // Strip row_ptr arrays are shorter than the full matrix's, so the
        // total matrix bytes may differ slightly; values and col_ind match.
        assert!(par.matrix_bytes() >= csr.nnz() * (8 + 4));
    }

    #[test]
    fn empty_matrix_parallel() {
        let csr = Csr::<f64>::from_coo(&Coo::new(0, 4));
        let par = ParallelSpmv::from_csr(&csr, 2, &[], 1, Csr::clone);
        assert_eq!(par.n_strips(), 0);
        assert_eq!(par.spmv(&[1.0; 4]), Vec::<f64>::new());
    }

    #[test]
    fn no_strip_is_ever_empty() {
        // n_threads far above the unit count: the partitioner produces
        // empty tail ranges, but none may survive into a strip.
        for (n, threads) in [(1usize, 8usize), (3, 16), (5, 5), (7, 3)] {
            let csr = fixture(n, 6);
            let par = ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
            assert!(par.n_strips() >= 1);
            for rows in par.strip_rows() {
                assert!(!rows.is_empty(), "{n} rows / {threads} threads left an empty strip");
            }
        }
    }

    #[test]
    fn more_threads_than_units_blocked() {
        // Blocked units (height 4) with more threads than units: strips
        // stay aligned, non-empty, and the product is unchanged.
        let csr = fixture(10, 12);
        let shape = BlockShape::new(4, 2).unwrap();
        let par = ParallelSpmv::from_csr(
            &csr,
            9,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
        );
        assert!(par.n_strips() <= 3); // ceil(10/4) = 3 units
        for rows in par.strip_rows() {
            assert!(!rows.is_empty());
            assert_eq!(rows.start % 4, 0);
        }
        let x = vec![1.0; 12];
        let want = csr.spmv(&x);
        for (a, g) in want.iter().zip(par.spmv(&x).iter()) {
            assert!((a - g).abs() < 1e-9);
        }
    }

    #[test]
    fn multi_matches_per_column_spmv() {
        let csr = fixture(101, 77);
        for threads in [1, 2, 4] {
            let par =
                ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
            for k in [1, 4, 9] {
                let x: Vec<f64> = (0..77 * k).map(|i| 1.0 + (i % 9) as f64).collect();
                let got = par.spmv_multi(&x, k);
                for t in 0..k {
                    let want = csr.spmv(&x[t * 77..(t + 1) * 77]);
                    assert_eq!(got[t * 101..(t + 1) * 101], want, "threads={threads} k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn single_strip_fast_path_zeroes_uncovered_rows() {
        // One thread over a matrix whose trailing rows hold no nonzeros:
        // the inline fast path must still zero every output row.
        let csr = Csr::from_coo(
            &Coo::from_triplets(6, 4, vec![(0, 0, 2.0), (1, 3, 4.0)]).unwrap(),
        );
        let par = ParallelSpmv::from_csr(&csr, 1, &csr_unit_weights(&csr), 1, Csr::clone);
        assert_eq!(par.n_strips(), 1);
        let mut y = vec![f64::NAN; 6]; // poison: stale values must be overwritten
        par.spmv_into(&[1.0; 4], &mut y);
        assert_eq!(y, csr.spmv(&[1.0; 4]));
    }
}
