//! Thread-to-core pinning for the persistent worker pool.
//!
//! The paper's multithreaded measurements (§V-A) assume each thread runs
//! on its own core for the lifetime of the experiment; without pinning,
//! the OS may migrate workers between cores mid-measurement, which both
//! perturbs per-strip timings and invalidates the bandwidth-sharing
//! assumption of the multicore model (`spmv-model::multicore`).
//!
//! On Linux this module pins via `sched_setaffinity(2)`, called directly
//! through the C library so the crate stays dependency-free. On every
//! other platform pinning is a documented no-op: [`pin_current_thread`]
//! returns `false` and the pool keeps running unpinned.

use crate::topology::Topology;

/// How pool workers are assigned to CPU cores.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// Do not pin; workers float wherever the scheduler puts them.
    #[default]
    None,
    /// Pin worker `i` to core `i % available_cores()` — one worker per
    /// core, round-robin when the pool is oversubscribed. This is the
    /// placement the paper's 1/2/4-core sweep assumes.
    Compact,
    /// Pin worker `i` to `cores[i % cores.len()]` — an explicit core
    /// list, e.g. to keep workers on one NUMA node or skip SMT siblings.
    Cores(Vec<usize>),
    /// Spread workers round-robin across the topology's memory domains
    /// (worker `i` → domain `i % D`, consecutive cores within a domain),
    /// so every memory controller carries an equal share of strips —
    /// see [`Topology::core_for_worker`] for the exact rule. Combined
    /// with first-touch strip allocation this is the NUMA-aware
    /// placement `docs/NUMA.md` describes.
    Domains(Topology),
}

impl PinPolicy {
    /// The core the `worker`-th pool thread should be pinned to, or
    /// `None` when the policy does not pin.
    pub fn core_for(&self, worker: usize) -> Option<usize> {
        match self {
            PinPolicy::None => None,
            PinPolicy::Compact => Some(worker % available_cores()),
            PinPolicy::Cores(cores) => {
                if cores.is_empty() {
                    None
                } else {
                    Some(cores[worker % cores.len()])
                }
            }
            PinPolicy::Domains(topology) => Some(topology.core_for_worker(worker)),
        }
    }

    /// The memory domain the `worker`-th thread executes in, when the
    /// policy knows one. `Compact`/`Cores` pin but carry no domain map;
    /// callers wanting per-domain predictions should use `Domains`.
    pub fn domain_for(&self, worker: usize) -> Option<usize> {
        match self {
            PinPolicy::Domains(topology) => Some(topology.domain_for_worker(worker)),
            _ => None,
        }
    }

    /// Whether pinning `n_workers` threads under this policy would land
    /// two workers on the same core (the policies all round-robin
    /// rather than fail, which silently serializes the "parallel"
    /// strips). Pools emit the `pool.pin_oversubscribed` telemetry
    /// counter and record the condition when this returns `true`.
    pub fn oversubscribed(&self, n_workers: usize) -> bool {
        let distinct = match self {
            PinPolicy::None => return false,
            PinPolicy::Compact => available_cores(),
            PinPolicy::Cores(cores) => {
                if cores.is_empty() {
                    return false;
                }
                let mut sorted = cores.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len()
            }
            PinPolicy::Domains(topology) => topology.n_cores(),
        };
        n_workers > distinct
    }
}

/// Runs `f` to completion on a freshly spawned thread pinned as the
/// `worker`-th thread of `policy`, and returns its result.
///
/// This is the placement seam for maintenance measurements — e.g. an
/// online tuner re-profiling a suspect kernel — that must observe the
/// same core/cache environment as the pool workers they calibrate for
/// ([`PinPolicy::core_for`] gives both the same answer), without
/// hijacking a serving worker or inheriting the caller's (dispatcher,
/// tuner) affinity mask. Pinning is best-effort, like the pool's: when
/// the policy yields no core or the kernel rejects the mask, `f` simply
/// runs unpinned.
///
/// A panic in `f` is propagated to the caller.
pub fn run_pinned<R, F>(policy: &PinPolicy, worker: usize, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let core = policy.core_for(worker);
    std::thread::scope(|s| {
        let handle = std::thread::Builder::new()
            .name("spmv-pinned-task".into())
            .spawn_scoped(s, move || {
                if let Some(core) = core {
                    let _ = pin_current_thread(core);
                }
                f()
            })
            .expect("spawn pinned task thread");
        match handle.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// Number of hardware threads the host exposes (at least 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the calling thread to `core`. Returns `true` on success.
///
/// On Linux this issues `sched_setaffinity(0, …)` — pid 0 means the
/// calling thread — with a single-core CPU mask. On other platforms (or
/// when the kernel rejects the mask, e.g. `core` outside the cgroup's
/// cpuset) it returns `false` and execution continues unpinned, so
/// callers can treat pinning as best-effort.
pub fn pin_current_thread(core: usize) -> bool {
    imp::pin_current_thread(core)
}

#[cfg(target_os = "linux")]
mod imp {
    /// `cpu_set_t` is a fixed 1024-bit mask (128 bytes) in glibc.
    const CPU_SET_WORDS: usize = 1024 / 64;

    extern "C" {
        // int sched_setaffinity(pid_t pid, size_t cpusetsize, const cpu_set_t *mask);
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn pin_current_thread(core: usize) -> bool {
        if core >= CPU_SET_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; CPU_SET_WORDS];
        mask[core / 64] |= 1u64 << (core % 64);
        // SAFETY: the mask is a valid, fully-initialized 128-byte buffer
        // and pid 0 addresses only the calling thread.
        unsafe { sched_setaffinity(0, core::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn pin_current_thread(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_policy_round_robins_over_cores() {
        let cores = available_cores();
        assert!(cores >= 1);
        for w in 0..2 * cores {
            assert_eq!(PinPolicy::Compact.core_for(w), Some(w % cores));
        }
    }

    #[test]
    fn explicit_core_list_cycles() {
        let p = PinPolicy::Cores(vec![3, 5]);
        assert_eq!(p.core_for(0), Some(3));
        assert_eq!(p.core_for(1), Some(5));
        assert_eq!(p.core_for(2), Some(3));
        assert_eq!(PinPolicy::Cores(vec![]).core_for(0), None);
    }

    #[test]
    fn none_policy_never_pins() {
        assert_eq!(PinPolicy::None.core_for(0), None);
        assert_eq!(PinPolicy::None.core_for(7), None);
    }

    #[test]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 exists on every host; elsewhere the no-op returns false.
        let ok = pin_current_thread(0);
        if cfg!(target_os = "linux") {
            assert!(ok, "sched_setaffinity to core 0 should succeed");
        } else {
            assert!(!ok);
        }
    }

    #[test]
    fn absurd_core_index_is_rejected() {
        assert!(!pin_current_thread(1 << 20));
    }

    #[test]
    fn run_pinned_returns_the_closure_result() {
        let sum = run_pinned(&PinPolicy::Compact, 0, || (1..=10).sum::<u64>());
        assert_eq!(sum, 55);
        // Unpinnable policies still run the work.
        let out = run_pinned(&PinPolicy::None, 3, || "ran");
        assert_eq!(out, "ran");
    }

    #[test]
    fn domains_policy_spreads_and_reports_domains() {
        let t = Topology::from_domains(vec![vec![0, 1], vec![2, 3]]);
        let p = PinPolicy::Domains(t);
        assert_eq!(p.core_for(0), Some(0));
        assert_eq!(p.core_for(1), Some(2));
        assert_eq!(p.core_for(2), Some(1));
        assert_eq!(p.core_for(3), Some(3));
        assert_eq!(p.domain_for(0), Some(0));
        assert_eq!(p.domain_for(3), Some(1));
        assert_eq!(PinPolicy::Compact.domain_for(0), None);
    }

    #[test]
    fn oversubscription_is_detected_per_policy() {
        assert!(!PinPolicy::None.oversubscribed(10_000));
        assert!(!PinPolicy::Cores(vec![]).oversubscribed(3));
        // Duplicate cores collapse: two workers on {5, 5} oversubscribe.
        assert!(PinPolicy::Cores(vec![5, 5]).oversubscribed(2));
        assert!(!PinPolicy::Cores(vec![5, 6]).oversubscribed(2));
        let t = Topology::from_domains(vec![vec![0], vec![1]]);
        assert!(!PinPolicy::Domains(t.clone()).oversubscribed(2));
        assert!(PinPolicy::Domains(t).oversubscribed(3));
        let n = available_cores();
        assert!(!PinPolicy::Compact.oversubscribed(n));
        assert!(PinPolicy::Compact.oversubscribed(n + 1));
    }

    #[test]
    fn run_pinned_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            run_pinned(&PinPolicy::None, 0, || panic!("boom"));
        });
        assert!(r.is_err());
    }
}
