//! A persistent, optionally core-pinned worker pool for repeated SpMV.
//!
//! [`crate::ParallelSpmv`] spawns scoped threads on *every* call, so a
//! thread spawn + join (tens of microseconds) is paid per multiply —
//! acceptable for a one-shot product, but it dominates exactly the
//! small/medium matrices where the paper's models are most
//! discriminating, and an iterative solver calling SpMV thousands of
//! times cannot afford it. [`SpmvPool`] spawns its workers **once**:
//!
//! * each worker owns its row strip (the same padding-aware partitioning
//!   as the scoped driver) and is optionally pinned to a core
//!   ([`crate::affinity`]);
//! * every [`SpMv::spmv_into`] call is one *epoch*: the driver publishes
//!   the input vector, bumps an atomic epoch counter, and the workers —
//!   spinning briefly, then parked — wake, multiply their strip into a
//!   disjoint slice of a shared output buffer, and report completion;
//! * per-strip wall-clock timings (min / median nanoseconds per
//!   iteration) are recorded on every epoch, so the multicore model
//!   (`spmv-model::multicore`) can consume *measured* per-thread
//!   imbalance instead of assuming perfect static balance.
//!
//! When `spmv-telemetry` recording is enabled, every epoch additionally
//! emits a `pool.epoch` span (driver side, arg = vector count) and one
//! `pool.strip` span per worker (arg = strip index), so a chrome trace
//! shows the dispatch/imbalance structure of a run. With telemetry
//! disabled (the default) the cost is one relaxed atomic load per epoch
//! per thread.
//!
//! # Example
//!
//! ```
//! use spmv_core::{Coo, Csr, SpMv};
//! use spmv_parallel::{csr_unit_weights, PinPolicy, SpmvPool};
//!
//! let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![
//!     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0),
//! ]).unwrap());
//! let pool = SpmvPool::from_csr(
//!     &csr, 2, &csr_unit_weights(&csr), 1, Csr::clone, PinPolicy::None,
//! );
//! for _ in 0..10 {
//!     assert_eq!(pool.spmv(&[1.0; 4]), csr.spmv(&[1.0; 4]));
//! }
//! assert_eq!(pool.iterations(), 10);
//! // The same two OS threads served all ten calls.
//! for report in pool.strip_reports() {
//!     assert_eq!(report.iterations, 10);
//!     assert!(!report.respawned);
//! }
//! ```

use core::ops::Range;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle, Thread, ThreadId};
use std::time::{Duration, Instant};

use crate::affinity::PinPolicy;
use crate::driver::ParallelSpmv;
use spmv_core::{Csr, MatrixShape, Scalar, SpMv, SpMvMulti};
use spmv_telemetry::window::SampleWindow;

/// Epoch value ordering workers to exit. Driver epochs count up from 1,
/// so this sentinel is unreachable in any realistic run.
const SHUTDOWN: u64 = u64::MAX;

/// Spin iterations before a waiting worker parks (spin-then-park): long
/// enough that back-to-back solver iterations never pay a park/unpark,
/// short enough that an idle pool costs no measurable CPU. Used only
/// when every worker (plus the driver) can own a hardware thread;
/// oversubscribed pools skip spinning entirely — burning the one shared
/// core in a spin loop would starve the very workers being waited on.
const WORKER_SPINS: u32 = 1 << 14;

/// Sched-yield rounds between the spin phase and the first park.
const WORKER_YIELDS: u32 = 32;

/// How long a parked worker sleeps before re-checking the epoch; parked
/// workers are also explicitly unparked at every epoch, so this only
/// bounds the recovery time from a lost wakeup.
const PARK_INTERVAL: Duration = Duration::from_micros(200);

/// Spin iterations before the driver starts yielding while waiting for
/// strips to finish (again only when hardware threads are plentiful).
const DRIVER_SPINS: u32 = 1 << 14;

/// Maximum vectors per multi-vector epoch. Larger `k` is chunked into
/// epochs of this size, bounding the standing multi-output slab at
/// `n_rows * POOL_EPOCH_K` elements and matching the specialized kernel
/// counts downstream.
const POOL_EPOCH_K: usize = 8;

/// The input-vector slot: a raw pointer + length published by the driver
/// before each epoch and read by every worker during it.
///
/// Safety protocol: the driver writes the slot only while the pool is
/// *quiescent* (all workers' `done` counters equal the current epoch),
/// and workers read it only between the driver's `Release` store of the
/// new epoch and their own `Release` store of `done` — so writes and
/// reads are never concurrent, and the pointed-to slice outlives the
/// epoch because the driver blocks until every worker reports done.
struct XSlot<T> {
    slot: UnsafeCell<(*const T, usize, usize)>,
}

// SAFETY: access is serialized by the epoch protocol described above;
// `T: Sync` lets many workers read the published slice concurrently.
unsafe impl<T: Sync> Sync for XSlot<T> {}
// SAFETY: the raw pointer is only a capability to read a `&[T]` that the
// driver re-publishes each epoch; sending the slot between threads is
// harmless for `T: Send + Sync`.
unsafe impl<T: Send> Send for XSlot<T> {}

impl<T> XSlot<T> {
    fn new() -> Self {
        XSlot {
            slot: UnsafeCell::new((core::ptr::null(), 0, 1)),
        }
    }

    /// Publishes `x` (holding `k` concatenated input vectors) for the
    /// coming epoch.
    ///
    /// # Safety
    ///
    /// Caller must hold the driver lock with the pool quiescent.
    unsafe fn set(&self, x: &[T], k: usize) {
        *self.slot.get() = (x.as_ptr(), x.len(), k);
    }

    /// The slice and vector count published for the current epoch.
    ///
    /// # Safety
    ///
    /// May only be called by a worker inside an epoch (after observing
    /// the epoch store that happened-after [`XSlot::set`]).
    unsafe fn get<'a>(&self) -> (&'a [T], usize) {
        let (ptr, len, k) = *self.slot.get();
        if len == 0 {
            (&[], k)
        } else {
            (core::slice::from_raw_parts(ptr, len), k)
        }
    }
}

/// The shared output buffer: one `UnsafeCell` per element so disjoint
/// row ranges can be written concurrently without aliasing a single
/// `&mut` over the whole buffer.
///
/// The safe wrapper enforces disjointness structurally: strip row ranges
/// are validated non-overlapping at pool construction, and each worker
/// only ever derives a mutable slice over its own range.
struct SharedOutput<T> {
    buf: Box<[UnsafeCell<T>]>,
}

// SAFETY: concurrent mutation is confined to disjoint element ranges by
// the pool's strip validation; `T: Send` suffices because no element is
// ever accessed from two threads at once.
unsafe impl<T: Send> Sync for SharedOutput<T> {}

impl<T: Scalar> SharedOutput<T> {
    fn zeroed(n: usize) -> Self {
        SharedOutput {
            buf: (0..n).map(|_| UnsafeCell::new(T::ZERO)).collect(),
        }
    }

    /// Mutable view of `rows`, for exactly one worker per epoch.
    ///
    /// # Safety
    ///
    /// `rows` must not overlap any range concurrently handed to another
    /// thread (guaranteed by strip validation), and the caller must be
    /// inside an epoch for that range.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, rows: Range<usize>) -> &mut [T] {
        let cells = &self.buf[rows];
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`; the cells
        // are contiguous, and the caller guarantees exclusive access.
        core::slice::from_raw_parts_mut(UnsafeCell::raw_get(cells.as_ptr()), cells.len())
    }

    /// Read-only view of the whole buffer.
    ///
    /// # Safety
    ///
    /// Caller must hold the driver lock with the pool quiescent.
    unsafe fn as_slice(&self) -> &[T] {
        // SAFETY: quiescence means no worker holds a `&mut` into the
        // buffer; layout identity as in `slice_mut`.
        core::slice::from_raw_parts(UnsafeCell::raw_get(self.buf.as_ptr()), self.buf.len())
    }
}

/// Per-strip timing history, updated by its worker on every epoch: a
/// bounded [`SampleWindow`] (whole-history count and min, windowed
/// median) plus the OS threads that have served the strip.
#[derive(Debug)]
struct StripTiming {
    window: SampleWindow,
    thread_ids: Vec<ThreadId>,
}

impl StripTiming {
    fn new() -> Self {
        StripTiming {
            window: SampleWindow::default(),
            thread_ids: Vec::new(),
        }
    }

    fn note_thread(&mut self, id: ThreadId) {
        if !self.thread_ids.contains(&id) {
            self.thread_ids.push(id);
        }
    }

    fn record(&mut self, ns: u64, id: ThreadId) {
        self.window.record(ns);
        self.note_thread(id);
    }
}

/// Timing summary for one strip of a [`SpmvPool`].
#[derive(Debug, Clone)]
pub struct StripReport {
    /// The rows this strip covers.
    pub rows: Range<usize>,
    /// Iterations executed by this strip's worker so far.
    pub iterations: u64,
    /// Fastest observed iteration, in nanoseconds (0 before the first).
    pub min_ns: u64,
    /// Median of the most recent iterations (a window of
    /// [`spmv_telemetry::window::DEFAULT_WINDOW`] samples; 0 before the
    /// first).
    pub median_ns: u64,
    /// `true` if more than one OS thread ever served this strip — always
    /// `false` for a healthy pool, since workers live for the pool's
    /// whole lifetime.
    pub respawned: bool,
}

/// One worker's synchronization + instrumentation state, cache-line
/// padded so the per-worker `done` counters never false-share.
#[repr(align(64))]
struct WorkerState {
    done: AtomicU64,
    timing: Mutex<StripTiming>,
}

impl WorkerState {
    fn new() -> Self {
        WorkerState {
            done: AtomicU64::new(0),
            timing: Mutex::new(StripTiming::new()),
        }
    }
}

/// State shared between the driver and all workers.
struct PoolShared<T> {
    epoch: AtomicU64,
    poisoned: AtomicBool,
    /// Spin iterations granted to waiting threads: [`WORKER_SPINS`] /
    /// [`DRIVER_SPINS`] when workers + driver fit the hardware threads,
    /// 0 when oversubscribed (yield straight away so runnable workers
    /// get the core).
    spin_budget: u32,
    x: XSlot<T>,
    y: SharedOutput<T>,
    /// Output slab for multi-vector epochs: each strip owns the region
    /// `[rows.start * POOL_EPOCH_K, rows.end * POOL_EPOCH_K)` and lays its
    /// `k ≤ POOL_EPOCH_K` output columns out contiguously at its base —
    /// disjointness follows from strip disjointness, as for `y`.
    y_multi: SharedOutput<T>,
    workers: Vec<WorkerState>,
}

/// Driver-side epoch counter, behind a mutex so concurrent `spmv_into`
/// calls on a shared pool serialize instead of racing on the x slot.
struct DriverState {
    epoch: u64,
}

/// A persistent worker pool executing row-partitioned SpMV.
///
/// Workers are spawned once at construction (optionally pinned per
/// [`PinPolicy`]), each owning one row strip in the format under test;
/// every [`SpMv::spmv_into`] call drives one epoch through a lightweight
/// spin-then-park barrier. See the [module docs](self) for the protocol
/// and a usage example.
///
/// The pool is format-erased: the strip format `F` is a construction
/// parameter only, so heterogeneous pools can share one code path in
/// harnesses. Dropping the pool shuts the workers down and joins them.
///
/// # Ownership and shutdown contract
///
/// Every epoch borrows the caller's `x` for its whole duration, so the
/// pool must never outlive a call's inputs — which the borrow checker
/// already enforces — and, conversely, a *shut-down* pool must never
/// start an epoch: its workers are gone and the driver would spin
/// forever on `done` counters nobody bumps. [`SpmvPool::shutdown`] makes
/// that state explicit and checkable:
///
/// * `shutdown()` is idempotent; `Drop` runs the same path, so a pool
///   owned by a long-lived structure (e.g. a serving registry holding it
///   inside an `Arc`) is torn down correctly when the last handle drops,
///   from whichever thread that happens on.
/// * Any `spmv`/`spmv_multi` call after `shutdown()` panics immediately
///   with "used after shutdown" instead of hanging.
///
/// See `docs/PARALLEL.md` ("Pool ownership and shutdown") for the
/// registry-side picture.
pub struct SpmvPool<T: Scalar> {
    shared: Arc<PoolShared<T>>,
    driver: Mutex<DriverState>,
    worker_threads: Vec<Thread>,
    handles: Vec<JoinHandle<()>>,
    strip_rows: Vec<Range<usize>>,
    n_rows: usize,
    n_cols: usize,
    nnz_stored: usize,
    matrix_bytes: usize,
}

impl<T: Scalar> SpmvPool<T> {
    /// Builds a pool from explicit `(rows, strip)` pairs.
    ///
    /// Strips must be sorted, non-empty, mutually disjoint, and contained
    /// in `0..n_rows`; rows not covered by any strip yield zeros. Use
    /// [`SpmvPool::from_csr`] for the common weight-balanced path.
    ///
    /// # Panics
    ///
    /// Panics if a strip range is empty, out of bounds, or overlaps its
    /// predecessor, or if a strip's shape disagrees with its range.
    pub fn new<F>(strips: Vec<(Range<usize>, F)>, n_rows: usize, n_cols: usize, pin: PinPolicy) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        let mut prev_end = 0usize;
        for (rows, mat) in &strips {
            assert!(!rows.is_empty(), "empty strip {rows:?}");
            assert!(rows.start >= prev_end, "strips overlap or are unsorted at {rows:?}");
            assert!(rows.end <= n_rows, "strip {rows:?} exceeds {n_rows} rows");
            assert_eq!(mat.n_rows(), rows.len(), "strip shape disagrees with its range");
            assert_eq!(mat.n_cols(), n_cols, "strip column count disagrees");
            prev_end = rows.end;
        }
        let nnz_stored = strips.iter().map(|(_, m)| m.nnz_stored()).sum();
        let matrix_bytes = strips.iter().map(|(_, m)| m.matrix_bytes()).sum();
        let strip_rows: Vec<Range<usize>> = strips.iter().map(|(r, _)| r.clone()).collect();

        // Workers + the driving thread all need their own hardware
        // thread for busy-waiting to be profitable.
        let oversubscribed = strips.len() + 1 > crate::affinity::available_cores();
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            spin_budget: if oversubscribed { 0 } else { WORKER_SPINS },
            x: XSlot::new(),
            y: SharedOutput::zeroed(n_rows),
            y_multi: SharedOutput::zeroed(n_rows * POOL_EPOCH_K),
            workers: strips.iter().map(|_| WorkerState::new()).collect(),
        });

        let mut handles = Vec::with_capacity(strips.len());
        let mut worker_threads = Vec::with_capacity(strips.len());
        for (idx, (rows, mat)) in strips.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            let core = pin.core_for(idx);
            let handle = thread::Builder::new()
                .name(format!("spmv-pool-{idx}"))
                .spawn(move || worker_loop(shared, idx, rows, mat, core))
                .expect("spawn pool worker");
            worker_threads.push(handle.thread().clone());
            handles.push(handle);
        }

        SpmvPool {
            shared,
            driver: Mutex::new(DriverState { epoch: 0 }),
            worker_threads,
            handles,
            strip_rows,
            n_rows,
            n_cols,
            nnz_stored,
            matrix_bytes,
        }
    }

    /// Consumes a scoped-thread [`ParallelSpmv`] and re-hosts its strips
    /// on a persistent pool.
    pub fn from_parallel<F>(par: ParallelSpmv<F>, pin: PinPolicy) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        let (strips, n_rows, n_cols) = par.into_parts();
        Self::new(strips, n_rows, n_cols, pin)
    }

    /// Partitions `csr` into `n_threads` weight-balanced strips (same
    /// rules as [`ParallelSpmv::from_csr`]) and hosts them on a pool.
    pub fn from_csr<F>(
        csr: &Csr<T>,
        n_threads: usize,
        unit_weights: &[u64],
        unit_height: usize,
        build: impl Fn(&Csr<T>) -> F,
        pin: PinPolicy,
    ) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        Self::from_parallel(
            ParallelSpmv::from_csr(csr, n_threads, unit_weights, unit_height, build),
            pin,
        )
    }

    /// Number of live workers (= non-empty strips, ≤ requested threads).
    pub fn n_workers(&self) -> usize {
        self.strip_rows.len()
    }

    /// The row ranges assigned to each worker.
    pub fn strip_rows(&self) -> Vec<Range<usize>> {
        self.strip_rows.clone()
    }

    /// Epochs (SpMV calls) completed by the pool so far.
    pub fn iterations(&self) -> u64 {
        self.driver.lock().unwrap_or_else(|e| e.into_inner()).epoch
    }

    /// Per-strip timing summaries (see [`StripReport`]).
    pub fn strip_reports(&self) -> Vec<StripReport> {
        self.strip_rows
            .iter()
            .zip(&self.shared.workers)
            .map(|(rows, w)| {
                let t = w.timing.lock().unwrap_or_else(|e| e.into_inner());
                StripReport {
                    rows: rows.clone(),
                    iterations: t.window.count(),
                    min_ns: t.window.min(),
                    median_ns: t.window.median(),
                    respawned: t.thread_ids.len() > 1,
                }
            })
            .collect()
    }

    /// The distinct OS thread ids that have served each strip, in order
    /// of first observation. A healthy pool has exactly one per strip —
    /// the respawn-detection hook used by the equivalence tests.
    pub fn worker_thread_ids(&self) -> Vec<Vec<ThreadId>> {
        self.shared
            .workers
            .iter()
            .map(|w| {
                w.timing
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .thread_ids
                    .clone()
            })
            .collect()
    }

    /// Median measured seconds per iteration for every strip — the
    /// measured-imbalance input to
    /// `spmv_model::multicore::predict_threaded_measured`.
    ///
    /// Returns `None` until every strip has completed at least one
    /// timed iteration (run a warm-up [`SpMv::spmv`] first).
    pub fn measured_strip_seconds(&self) -> Option<Vec<f64>> {
        let reports = self.strip_reports();
        if reports.is_empty() || reports.iter().any(|r| r.iterations == 0) {
            return None;
        }
        Some(reports.iter().map(|r| r.median_ns as f64 * 1e-9).collect())
    }

    /// Shuts the workers down and joins them. Idempotent: the first call
    /// tears the pool down, later calls (and `Drop`, which runs the same
    /// path) are no-ops.
    ///
    /// After shutdown the pool still answers metadata queries
    /// ([`SpmvPool::strip_reports`], [`SpmvPool::iterations`], ...), but
    /// any further [`SpMv::spmv_into`] / [`SpMvMulti::spmv_multi_into`]
    /// call panics rather than waiting on workers that no longer exist.
    ///
    /// Requires `&mut self` (exclusive ownership): a pool shared behind
    /// an `Arc` is instead shut down by dropping the last handle.
    pub fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.shared.epoch.store(SHUTDOWN, Ordering::Release);
        for t in &self.worker_threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Whether [`SpmvPool::shutdown`] has already run (a pool built with
    /// zero strips counts as shut down — it never had workers).
    pub fn is_shut_down(&self) -> bool {
        self.handles.is_empty()
    }

    /// Runs one epoch: publish `x` (holding `k` input vectors), wake the
    /// workers, wait for all strips, and return the guard that keeps the
    /// pool quiescent while the caller copies the output out.
    fn run_epoch(&self, x: &[T], k: usize) -> MutexGuard<'_, DriverState> {
        assert!(
            !self.handles.is_empty(),
            "SpmvPool used after shutdown(): no workers are left to serve the epoch"
        );
        // Covers publish → every strip done (not the caller's copy-out).
        let _epoch_span = spmv_telemetry::span_with("pool.epoch", k as u64);
        let mut st = self.driver.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the driver lock is held and every worker's `done`
        // equals `st.epoch`, so no worker is reading the slot.
        unsafe { self.shared.x.set(x, k) };
        st.epoch += 1;
        self.shared.epoch.store(st.epoch, Ordering::Release);
        for t in &self.worker_threads {
            t.unpark();
        }
        let spin_budget = if self.shared.spin_budget == 0 {
            0
        } else {
            DRIVER_SPINS
        };
        for w in &self.shared.workers {
            let mut spins = 0u32;
            while w.done.load(Ordering::Acquire) < st.epoch {
                spins = spins.saturating_add(1);
                if spins < spin_budget {
                    core::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
        assert!(
            !self.shared.poisoned.load(Ordering::Acquire),
            "a pool worker panicked during SpMV"
        );
        st
    }
}

impl<T: Scalar> MatrixShape for SpmvPool<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: Scalar> SpMv<T> for SpmvPool<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        if self.n_rows == 0 {
            return;
        }
        if self.shared.workers.is_empty() {
            y.fill(T::ZERO);
            return;
        }
        let guard = self.run_epoch(x, 1);
        // SAFETY: `guard` keeps the pool quiescent; uncovered rows were
        // zero-initialized and are never written, so a straight copy is
        // complete.
        y.copy_from_slice(unsafe { self.shared.y.as_slice() });
        drop(guard);
    }

    fn nnz_stored(&self) -> usize {
        self.nnz_stored
    }

    fn matrix_bytes(&self) -> usize {
        self.matrix_bytes
    }
}

impl<T: Scalar> SpMvMulti<T> for SpmvPool<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        if self.n_rows == 0 {
            return;
        }
        y.fill(T::ZERO); // rows not covered by any strip stay zero
        if self.shared.workers.is_empty() {
            return;
        }
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(POOL_EPOCH_K);
            let guard = self.run_epoch(&x[t0 * m..(t0 + kc) * m], kc);
            // SAFETY (both arms): `guard` keeps the pool quiescent while
            // the epoch's output is copied out.
            if kc == 1 {
                let src = unsafe { self.shared.y.as_slice() };
                y[t0 * n..(t0 + 1) * n].copy_from_slice(src);
            } else {
                let slab = unsafe { self.shared.y_multi.as_slice() };
                for rows in &self.strip_rows {
                    let h = rows.len();
                    let base = rows.start * POOL_EPOCH_K;
                    for t in 0..kc {
                        y[(t0 + t) * n + rows.start..(t0 + t) * n + rows.end]
                            .copy_from_slice(&slab[base + t * h..base + (t + 1) * h]);
                    }
                }
            }
            drop(guard);
            t0 += kc;
        }
    }
}

impl<T: Scalar> core::fmt::Debug for SpmvPool<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SpmvPool")
            .field("n_rows", &self.n_rows)
            .field("n_cols", &self.n_cols)
            .field("strip_rows", &self.strip_rows)
            .field("iterations", &self.iterations())
            .finish()
    }
}

impl<T: Scalar> Drop for SpmvPool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The body of one pool worker: pin, then serve epochs until shutdown.
fn worker_loop<T: Scalar, F: SpMvMulti<T>>(
    shared: Arc<PoolShared<T>>,
    idx: usize,
    rows: Range<usize>,
    mat: F,
    core: Option<usize>,
) {
    if let Some(c) = core {
        // Best-effort: a rejected mask (e.g. restricted cpuset) leaves
        // the worker unpinned but fully functional.
        let _ = crate::affinity::pin_current_thread(c);
    }
    let me = &shared.workers[idx];
    me.timing
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .note_thread(thread::current().id());

    let mut done = 0u64;
    loop {
        let target = done + 1;
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e == SHUTDOWN {
                return;
            }
            if e >= target {
                break;
            }
            spins = spins.saturating_add(1);
            if spins < shared.spin_budget {
                core::hint::spin_loop();
            } else if spins < shared.spin_budget + WORKER_YIELDS {
                thread::yield_now();
            } else {
                thread::park_timeout(PARK_INTERVAL);
            }
        }

        // Latch the telemetry decision for the whole strip: if recording
        // is enabled mid-strip, `ts0` would still be the bogus epoch
        // anchor 0, so the span must not be emitted this round.
        let armed = spmv_telemetry::enabled();
        let ts0 = if armed { spmv_telemetry::now_ns() } else { 0 };
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: we are inside epoch `target`: the driver published
            // `x` before the epoch store we just observed, blocks until
            // our `done` store below, and `rows` (resp. this strip's
            // region of the multi slab) is this worker's exclusive,
            // validated-disjoint output range.
            let (x, k) = unsafe { shared.x.get() };
            if k <= 1 {
                let y = unsafe { shared.y.slice_mut(rows.clone()) };
                mat.spmv_into(x, y);
            } else {
                let base = rows.start * POOL_EPOCH_K;
                let y = unsafe { shared.y_multi.slice_mut(base..base + rows.len() * k) };
                mat.spmv_multi_into(x, y, k);
            }
        }));
        let ns = t0.elapsed().as_nanos() as u64;
        if armed {
            spmv_telemetry::complete("pool.strip", ts0, ns, idx as u64);
        }
        match result {
            Ok(()) => me
                .timing
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(ns, thread::current().id()),
            Err(_) => shared.poisoned.store(true, Ordering::Release),
        }
        done = target;
        me.done.store(done, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::csr_unit_weights;
    use spmv_core::Coo;

    fn fixture(n: usize, m: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for _ in 0..1 + (next() as usize) % 4 {
                let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 5) as f64);
            }
        }
        Csr::from_coo(&coo)
    }

    fn pool_for(csr: &Csr<f64>, threads: usize) -> SpmvPool<f64> {
        SpmvPool::from_csr(
            csr,
            threads,
            &csr_unit_weights(csr),
            1,
            Csr::clone,
            PinPolicy::None,
        )
    }

    #[test]
    fn pool_matches_sequential_csr_bitwise() {
        let csr = fixture(113, 67);
        let x: Vec<f64> = (0..67).map(|i| 1.0 + (i % 11) as f64).collect();
        let want = csr.spmv(&x);
        for threads in [1, 2, 4, 8] {
            let pool = pool_for(&csr, threads);
            assert_eq!(pool.spmv(&x), want, "threads = {threads}");
        }
    }

    #[test]
    fn repeated_calls_reuse_the_same_threads() {
        let csr = fixture(64, 64);
        let x = vec![1.0; 64];
        let pool = pool_for(&csr, 4);
        let want = csr.spmv(&x);
        let mut y = vec![0.0; 64];
        for _ in 0..1000 {
            pool.spmv_into(&x, &mut y);
        }
        assert_eq!(y, want);
        assert_eq!(pool.iterations(), 1000);
        let ids = pool.worker_thread_ids();
        assert_eq!(ids.len(), pool.n_workers());
        for per_strip in &ids {
            assert_eq!(per_strip.len(), 1, "strip was served by more than one thread");
        }
        for report in pool.strip_reports() {
            assert_eq!(report.iterations, 1000);
            assert!(!report.respawned);
            assert!(report.min_ns > 0);
            assert!(report.median_ns >= report.min_ns);
        }
    }

    #[test]
    fn pool_multi_matches_sequential_csr_bitwise() {
        let csr = fixture(113, 67);
        for threads in [1, 2, 4] {
            let pool = pool_for(&csr, threads);
            // k = 9 exercises an 8-vector epoch plus a single-vector one.
            for k in [1, 2, 4, 9] {
                let x: Vec<f64> = (0..67 * k).map(|i| 1.0 + (i % 11) as f64).collect();
                let got = pool.spmv_multi(&x, k);
                for t in 0..k {
                    let want = csr.spmv(&x[t * 67..(t + 1) * 67]);
                    assert_eq!(got[t * 113..(t + 1) * 113], want, "threads={threads} k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn pool_interleaves_single_and_multi_epochs() {
        let csr = fixture(48, 48);
        let pool = pool_for(&csr, 2);
        let x1 = vec![1.0; 48];
        let want1 = csr.spmv(&x1);
        let x4: Vec<f64> = (0..48 * 4).map(|i| 0.5 + (i % 5) as f64).collect();
        for _ in 0..3 {
            assert_eq!(pool.spmv(&x1), want1);
            let got = pool.spmv_multi(&x4, 4);
            for t in 0..4 {
                assert_eq!(got[t * 48..(t + 1) * 48], csr.spmv(&x4[t * 48..(t + 1) * 48]));
            }
        }
    }

    #[test]
    fn uncovered_rows_stay_zero_in_multi() {
        let csr = fixture(9, 9);
        let mid = csr.row_slice(3..6);
        let pool = SpmvPool::new(vec![(3..6, mid)], 9, 9, PinPolicy::None);
        let x: Vec<f64> = (0..18).map(|i| 1.0 + i as f64).collect();
        let got = pool.spmv_multi(&x, 2);
        for t in 0..2 {
            let want = csr.spmv(&x[t * 9..(t + 1) * 9]);
            for i in 0..9 {
                let expect = if (3..6).contains(&i) { want[i] } else { 0.0 };
                assert_eq!(got[t * 9 + i], expect, "t={t} row {i}");
            }
        }
    }

    #[test]
    fn timings_become_available_after_first_call() {
        let csr = fixture(40, 40);
        let pool = pool_for(&csr, 2);
        assert!(pool.measured_strip_seconds().is_none());
        let _ = pool.spmv(&vec![1.0; 40]);
        let t = pool.measured_strip_seconds().expect("timed after one call");
        assert_eq!(t.len(), pool.n_workers());
        assert!(t.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn empty_matrix_pool() {
        let csr = Csr::<f64>::from_coo(&Coo::new(0, 5));
        let pool = pool_for(&csr, 3);
        assert_eq!(pool.n_workers(), 0);
        assert_eq!(pool.spmv(&[1.0; 5]), Vec::<f64>::new());
    }

    #[test]
    fn more_threads_than_rows_pool() {
        let csr = fixture(3, 6);
        let pool = pool_for(&csr, 16);
        assert!(pool.n_workers() <= 3);
        let x = vec![1.0; 6];
        assert_eq!(pool.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn pinned_pool_still_computes_correctly() {
        let csr = fixture(50, 50);
        let x = vec![2.0; 50];
        let want = csr.spmv(&x);
        let pool = SpmvPool::from_csr(
            &csr,
            2,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Compact,
        );
        assert_eq!(pool.spmv(&x), want);
    }

    #[test]
    fn nnz_and_bytes_aggregate_like_scoped_driver() {
        let csr = fixture(60, 60);
        let par = ParallelSpmv::from_csr(&csr, 4, &csr_unit_weights(&csr), 1, Csr::clone);
        let (par_nnz, par_bytes) = (par.nnz_stored(), par.matrix_bytes());
        let pool = SpmvPool::from_parallel(par, PinPolicy::None);
        assert_eq!(pool.nnz_stored(), par_nnz);
        assert_eq!(pool.matrix_bytes(), par_bytes);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_workers() {
        let csr = fixture(40, 40);
        let x = vec![1.0; 40];
        let mut pool = pool_for(&csr, 2);
        let want = csr.spmv(&x);
        assert_eq!(pool.spmv(&x), want);
        assert!(!pool.is_shut_down());
        pool.shutdown();
        assert!(pool.is_shut_down());
        pool.shutdown(); // second call is a no-op
        // Metadata stays readable after shutdown.
        assert_eq!(pool.iterations(), 1);
        for report in pool.strip_reports() {
            assert_eq!(report.iterations, 1);
        }
        // Drop after explicit shutdown must not hang or double-join.
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "used after shutdown")]
    fn spmv_after_shutdown_panics_instead_of_hanging() {
        let csr = fixture(20, 20);
        let mut pool = pool_for(&csr, 2);
        pool.shutdown();
        let _ = pool.spmv(&vec![1.0; 20]);
    }

    #[test]
    fn arc_owned_pool_drops_cleanly_from_another_thread() {
        // The registry-ownership scenario: the pool lives inside an
        // `Arc`, handles are cloned across threads, and the last drop —
        // on whichever thread it lands — tears the workers down.
        let csr = fixture(50, 50);
        let x = vec![1.0; 50];
        let want = csr.spmv(&x);
        let pool = std::sync::Arc::new(pool_for(&csr, 2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let (x, want) = (x.clone(), want.clone());
                thread::spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(pool.spmv(&x), want);
                    }
                    drop(pool); // one of these drops is the last one
                })
            })
            .collect();
        drop(pool);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "strips overlap")]
    fn overlapping_strips_are_rejected() {
        let csr = fixture(10, 10);
        let a = csr.row_slice(0..6);
        let b = csr.row_slice(4..10);
        let _ = SpmvPool::new(vec![(0..6, a), (4..10, b)], 10, 10, PinPolicy::None);
    }

    #[test]
    fn uncovered_rows_stay_zero() {
        // A strip covering only the middle rows: everything else is 0.
        let csr = fixture(9, 9);
        let mid = csr.row_slice(3..6);
        let pool = SpmvPool::new(vec![(3..6, mid)], 9, 9, PinPolicy::None);
        let x = vec![1.0; 9];
        let y = pool.spmv(&x);
        let want = csr.spmv(&x);
        for i in 0..9 {
            let expect = if (3..6).contains(&i) { want[i] } else { 0.0 };
            assert_eq!(y[i], expect, "row {i}");
        }
    }
}
