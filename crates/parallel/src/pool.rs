//! A persistent, optionally core-pinned worker pool for repeated SpMV.
//!
//! [`crate::ParallelSpmv`] spawns scoped threads on *every* call, so a
//! thread spawn + join (tens of microseconds) is paid per multiply —
//! acceptable for a one-shot product, but it dominates exactly the
//! small/medium matrices where the paper's models are most
//! discriminating, and an iterative solver calling SpMV thousands of
//! times cannot afford it. [`SpmvPool`] spawns its workers **once**:
//!
//! * each worker owns its row strip (the same padding-aware partitioning
//!   as the scoped driver) and is optionally pinned to a core
//!   ([`crate::affinity`]);
//! * every [`SpMv::spmv_into`] call is one *epoch*: the driver publishes
//!   the input vector, bumps an atomic epoch counter, and the workers —
//!   spinning briefly, then parked — wake, multiply their strip into a
//!   disjoint slice of a shared output buffer, and report completion;
//! * per-strip wall-clock timings (min / median nanoseconds per
//!   iteration) are recorded on every epoch, so the multicore model
//!   (`spmv-model::multicore`) can consume *measured* per-thread
//!   imbalance instead of assuming perfect static balance.
//!
//! When `spmv-telemetry` recording is enabled, every epoch additionally
//! emits a `pool.epoch` span (driver side, arg = vector count) and one
//! `pool.strip` span per worker (arg = strip index), so a chrome trace
//! shows the dispatch/imbalance structure of a run. With telemetry
//! disabled (the default) the cost is one relaxed atomic load per epoch
//! per thread.
//!
//! # Example
//!
//! ```
//! use spmv_core::{Coo, Csr, SpMv};
//! use spmv_parallel::{csr_unit_weights, PinPolicy, SpmvPool};
//!
//! let csr = Csr::from_coo(&Coo::from_triplets(4, 4, vec![
//!     (0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0),
//! ]).unwrap());
//! let pool = SpmvPool::from_csr(
//!     &csr, 2, &csr_unit_weights(&csr), 1, Csr::clone, PinPolicy::None,
//! );
//! for _ in 0..10 {
//!     assert_eq!(pool.spmv(&[1.0; 4]), csr.spmv(&[1.0; 4]));
//! }
//! assert_eq!(pool.iterations(), 10);
//! // The same two OS threads served all ten calls.
//! for report in pool.strip_reports() {
//!     assert_eq!(report.iterations, 10);
//!     assert!(!report.respawned);
//! }
//! ```

use core::ops::Range;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle, Thread, ThreadId};
use std::time::{Duration, Instant};

use crate::affinity::PinPolicy;
use crate::driver::ParallelSpmv;
use crate::partition::{heavy_unit, partition_units, split_segments, units_to_rows};
use crate::topology::Topology;
use spmv_core::{Csr, MatrixShape, Scalar, SpMv, SpMvMulti};
use spmv_telemetry::window::SampleWindow;

/// Epoch value ordering workers to exit. Driver epochs count up from 1,
/// so this sentinel is unreachable in any realistic run.
const SHUTDOWN: u64 = u64::MAX;

/// Spin iterations before a waiting worker parks (spin-then-park): long
/// enough that back-to-back solver iterations never pay a park/unpark,
/// short enough that an idle pool costs no measurable CPU. Used only
/// when every worker (plus the driver) can own a hardware thread;
/// oversubscribed pools skip spinning entirely — burning the one shared
/// core in a spin loop would starve the very workers being waited on.
const WORKER_SPINS: u32 = 1 << 14;

/// Sched-yield rounds between the spin phase and the first park.
const WORKER_YIELDS: u32 = 32;

/// How long a parked worker sleeps before re-checking the epoch; parked
/// workers are also explicitly unparked at every epoch, so this only
/// bounds the recovery time from a lost wakeup.
const PARK_INTERVAL: Duration = Duration::from_micros(200);

/// Spin iterations before the driver starts yielding while waiting for
/// strips to finish (again only when hardware threads are plentiful).
const DRIVER_SPINS: u32 = 1 << 14;

/// Maximum vectors per multi-vector epoch. Larger `k` is chunked into
/// epochs of this size, bounding the standing multi-output slab at
/// `n_rows * POOL_EPOCH_K` elements and matching the specialized kernel
/// counts downstream.
const POOL_EPOCH_K: usize = 8;

/// The input-vector slot: a raw pointer + length published by the driver
/// before each epoch and read by every worker during it.
///
/// Safety protocol: the driver writes the slot only while the pool is
/// *quiescent* (all workers' `done` counters equal the current epoch),
/// and workers read it only between the driver's `Release` store of the
/// new epoch and their own `Release` store of `done` — so writes and
/// reads are never concurrent, and the pointed-to slice outlives the
/// epoch because the driver blocks until every worker reports done.
struct XSlot<T> {
    slot: UnsafeCell<(*const T, usize, usize)>,
}

// SAFETY: access is serialized by the epoch protocol described above;
// `T: Sync` lets many workers read the published slice concurrently.
unsafe impl<T: Sync> Sync for XSlot<T> {}
// SAFETY: the raw pointer is only a capability to read a `&[T]` that the
// driver re-publishes each epoch; sending the slot between threads is
// harmless for `T: Send + Sync`.
unsafe impl<T: Send> Send for XSlot<T> {}

impl<T> XSlot<T> {
    fn new() -> Self {
        XSlot {
            slot: UnsafeCell::new((core::ptr::null(), 0, 1)),
        }
    }

    /// Publishes `x` (holding `k` concatenated input vectors) for the
    /// coming epoch.
    ///
    /// # Safety
    ///
    /// Caller must hold the driver lock with the pool quiescent.
    unsafe fn set(&self, x: &[T], k: usize) {
        *self.slot.get() = (x.as_ptr(), x.len(), k);
    }

    /// The slice and vector count published for the current epoch.
    ///
    /// # Safety
    ///
    /// May only be called by a worker inside an epoch (after observing
    /// the epoch store that happened-after [`XSlot::set`]).
    unsafe fn get<'a>(&self) -> (&'a [T], usize) {
        let (ptr, len, k) = *self.slot.get();
        if len == 0 {
            (&[], k)
        } else {
            (core::slice::from_raw_parts(ptr, len), k)
        }
    }
}

/// The shared output buffer: one `UnsafeCell` per element so disjoint
/// row ranges can be written concurrently without aliasing a single
/// `&mut` over the whole buffer.
///
/// The safe wrapper enforces disjointness structurally: strip row ranges
/// are validated non-overlapping at pool construction, and each worker
/// only ever derives a mutable slice over its own range.
struct SharedOutput<T> {
    buf: Box<[UnsafeCell<T>]>,
}

// SAFETY: concurrent mutation is confined to disjoint element ranges by
// the pool's strip validation; `T: Send` suffices because no element is
// ever accessed from two threads at once.
unsafe impl<T: Send> Sync for SharedOutput<T> {}

impl<T: Scalar> SharedOutput<T> {
    /// A zeroed buffer whose pages are **untouched**: `alloc_zeroed`
    /// hands back copy-on-write zero pages, so each page's physical
    /// placement is decided by its *first writer* — the strip's worker —
    /// which is the first-touch protocol `docs/NUMA.md` describes.
    /// (A `vec![ZERO; n]`-style init here would place every output page
    /// on the driver's node.)
    fn zeroed(n: usize) -> Self {
        if n == 0 {
            return SharedOutput {
                buf: Vec::new().into_boxed_slice(),
            };
        }
        // `Scalar` is implemented for f32/f64 only, whose additive
        // identity is the all-zero bit pattern; assert it so a future
        // exotic Scalar impl fails loudly instead of reading garbage.
        let zero = T::ZERO;
        // SAFETY: reading the bytes of a live `T` value.
        let zero_bytes = unsafe {
            core::slice::from_raw_parts(&zero as *const T as *const u8, core::mem::size_of::<T>())
        };
        assert!(
            zero_bytes.iter().all(|&b| b == 0),
            "SharedOutput requires T::ZERO to be the all-zero bit pattern"
        );
        let layout = std::alloc::Layout::array::<UnsafeCell<T>>(n).expect("output buffer layout");
        // SAFETY: `layout` is non-zero-sized (n > 0, T is f32/f64); the
        // zeroed bytes are a valid `[UnsafeCell<T>]` per the assert
        // above, and `Box::from_raw` pairs with this exact array layout.
        unsafe {
            let ptr = std::alloc::alloc_zeroed(layout) as *mut UnsafeCell<T>;
            if ptr.is_null() {
                std::alloc::handle_alloc_error(layout);
            }
            SharedOutput {
                buf: Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, n)),
            }
        }
    }

    /// Mutable view of `rows`, for exactly one worker per epoch.
    ///
    /// # Safety
    ///
    /// `rows` must not overlap any range concurrently handed to another
    /// thread (guaranteed by strip validation), and the caller must be
    /// inside an epoch for that range.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, rows: Range<usize>) -> &mut [T] {
        let cells = &self.buf[rows];
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`; the cells
        // are contiguous, and the caller guarantees exclusive access.
        core::slice::from_raw_parts_mut(UnsafeCell::raw_get(cells.as_ptr()), cells.len())
    }

    /// Read-only view of the whole buffer.
    ///
    /// # Safety
    ///
    /// Caller must hold the driver lock with the pool quiescent.
    unsafe fn as_slice(&self) -> &[T] {
        // SAFETY: quiescence means no worker holds a `&mut` into the
        // buffer; layout identity as in `slice_mut`.
        core::slice::from_raw_parts(UnsafeCell::raw_get(self.buf.as_ptr()), self.buf.len())
    }
}

/// Per-strip timing history, updated by its worker on every epoch: a
/// bounded [`SampleWindow`] (whole-history count and min, windowed
/// median) plus the OS threads that have served the strip.
#[derive(Debug)]
struct StripTiming {
    window: SampleWindow,
    thread_ids: Vec<ThreadId>,
    /// Pin outcome of the serving worker: `None` while unknown or when
    /// the policy did not ask for a core, `Some(ok)` after the attempt.
    pinned: Option<bool>,
}

impl StripTiming {
    fn new() -> Self {
        StripTiming {
            window: SampleWindow::default(),
            thread_ids: Vec::new(),
            pinned: None,
        }
    }

    fn note_thread(&mut self, id: ThreadId) {
        if !self.thread_ids.contains(&id) {
            self.thread_ids.push(id);
        }
    }

    fn record(&mut self, ns: u64, id: ThreadId) {
        self.window.record(ns);
        self.note_thread(id);
    }
}

/// Timing summary for one strip of a [`SpmvPool`].
#[derive(Debug, Clone)]
pub struct StripReport {
    /// The rows this strip covers.
    pub rows: Range<usize>,
    /// Iterations executed by this strip's worker so far.
    pub iterations: u64,
    /// Fastest observed iteration, in nanoseconds (0 before the first).
    pub min_ns: u64,
    /// Median of the most recent iterations (a window of
    /// [`spmv_telemetry::window::DEFAULT_WINDOW`] samples; 0 before the
    /// first).
    pub median_ns: u64,
    /// `true` if more than one OS thread ever served this strip — always
    /// `false` for a healthy pool, since workers live for the pool's
    /// whole lifetime.
    pub respawned: bool,
    /// Whether the worker's pin attempt succeeded: `None` when the
    /// policy asked for no core (or the worker has not reported yet),
    /// `Some(false)` when `sched_setaffinity` rejected the mask — the
    /// pool keeps running unpinned, but placement-sensitive callers
    /// (e.g. a NUMA sweep) can see the degradation here.
    pub pinned: Option<bool>,
}

/// One worker's synchronization + instrumentation state, cache-line
/// padded so the per-worker `done` counters never false-share.
#[repr(align(64))]
struct WorkerState {
    done: AtomicU64,
    timing: Mutex<StripTiming>,
}

impl WorkerState {
    fn new() -> Self {
        WorkerState {
            done: AtomicU64::new(0),
            timing: Mutex::new(StripTiming::new()),
        }
    }
}

/// Driver-side state of an active heavy-row nnz split (see
/// [`Placement`]): the sheared row, its nonzero count, and the products
/// scratch the workers fill.
///
/// Bitwise-reproducibility protocol: workers write only the elementwise
/// **products** `val[p] * x[col[p]]` of their disjoint segment into
/// `scratch` (never partial sums), and the driver — still holding the
/// epoch guard, so the pool is quiescent — folds the products in
/// nonzero order with the same `product + acc` addition the serial CSR
/// kernel uses. Identical multiplications in identical positions plus an
/// identical left-fold addition order reproduce the serial rounding
/// exactly, which floating-point re-association could not.
struct SplitShared<T> {
    row: usize,
    nnz: usize,
    /// `nnz * POOL_EPOCH_K` product slots, vector-major: epoch vector
    /// `t` owns `[t * nnz, (t + 1) * nnz)`.
    scratch: SharedOutput<T>,
}

/// One worker's share of a sheared heavy row: the column indices and
/// values of its contiguous nonzero segment, plus where that segment's
/// products land in [`SplitShared::scratch`].
struct SplitSeg<T> {
    cols: Vec<usize>,
    vals: Vec<T>,
    offset: usize,
}

/// How a pool places its workers and pages — the NUMA-aware superset of
/// a bare [`PinPolicy`].
///
/// * `pin` — worker → core assignment (use [`PinPolicy::Domains`] to
///   spread workers across memory domains);
/// * `first_touch` — build each worker's strip *on that worker* after
///   pinning, and leave output pages untouched until the owning worker
///   first writes them, so all strip-local pages land on the worker's
///   node;
/// * `nnz_split` — when one row is heavier than the ideal per-worker
///   share, shear its nonzeros across all workers with a
///   deterministic, bitwise-reproducible merge (see `docs/NUMA.md`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Placement {
    /// Worker → core pinning policy.
    pub pin: PinPolicy,
    /// Build strips on their own (pinned) workers — first-touch pages.
    pub first_touch: bool,
    /// Shear a too-heavy row across workers instead of accepting the
    /// imbalance (only applies to row-granular partitions,
    /// `unit_height == 1`).
    pub nnz_split: bool,
}

impl Placement {
    /// No pinning, caller-side allocation, no splitting — byte-for-byte
    /// the behaviour of [`SpmvPool::from_csr`] with [`PinPolicy::None`].
    pub fn none() -> Self {
        Placement::default()
    }

    /// Pin under `pin` but keep caller-side allocation and no
    /// splitting — the pre-NUMA pool behaviour.
    pub fn pinned(pin: PinPolicy) -> Self {
        Placement {
            pin,
            ..Placement::default()
        }
    }

    /// The full NUMA-aware placement: domain-spread pinning,
    /// first-touch allocation, and the heavy-row split.
    pub fn domain_aware(topology: Topology) -> Self {
        Placement {
            pin: PinPolicy::Domains(topology),
            first_touch: true,
            nnz_split: true,
        }
    }
}

/// State shared between the driver and all workers.
struct PoolShared<T> {
    epoch: AtomicU64,
    poisoned: AtomicBool,
    /// Spin iterations granted to waiting threads: [`WORKER_SPINS`] /
    /// [`DRIVER_SPINS`] when workers + driver fit the hardware threads,
    /// 0 when oversubscribed (yield straight away so runnable workers
    /// get the core).
    spin_budget: u32,
    x: XSlot<T>,
    y: SharedOutput<T>,
    /// Output slab for multi-vector epochs: each strip owns the region
    /// `[rows.start * POOL_EPOCH_K, rows.end * POOL_EPOCH_K)` and lays its
    /// `k ≤ POOL_EPOCH_K` output columns out contiguously at its base —
    /// disjointness follows from strip disjointness, as for `y`.
    y_multi: SharedOutput<T>,
    /// Active heavy-row nnz split, if the placement sheared one.
    split: Option<SplitShared<T>>,
    workers: Vec<WorkerState>,
}

/// Driver-side epoch counter, behind a mutex so concurrent `spmv_into`
/// calls on a shared pool serialize instead of racing on the x slot.
struct DriverState {
    epoch: u64,
}

/// A persistent worker pool executing row-partitioned SpMV.
///
/// Workers are spawned once at construction (optionally pinned per
/// [`PinPolicy`]), each owning one row strip in the format under test;
/// every [`SpMv::spmv_into`] call drives one epoch through a lightweight
/// spin-then-park barrier. See the [module docs](self) for the protocol
/// and a usage example.
///
/// The pool is format-erased: the strip format `F` is a construction
/// parameter only, so heterogeneous pools can share one code path in
/// harnesses. Dropping the pool shuts the workers down and joins them.
///
/// # Ownership and shutdown contract
///
/// Every epoch borrows the caller's `x` for its whole duration, so the
/// pool must never outlive a call's inputs — which the borrow checker
/// already enforces — and, conversely, a *shut-down* pool must never
/// start an epoch: its workers are gone and the driver would spin
/// forever on `done` counters nobody bumps. [`SpmvPool::shutdown`] makes
/// that state explicit and checkable:
///
/// * `shutdown()` is idempotent; `Drop` runs the same path, so a pool
///   owned by a long-lived structure (e.g. a serving registry holding it
///   inside an `Arc`) is torn down correctly when the last handle drops,
///   from whichever thread that happens on.
/// * Any `spmv`/`spmv_multi` call after `shutdown()` panics immediately
///   with "used after shutdown" instead of hanging.
///
/// See `docs/PARALLEL.md` ("Pool ownership and shutdown") for the
/// registry-side picture.
pub struct SpmvPool<T: Scalar> {
    shared: Arc<PoolShared<T>>,
    driver: Mutex<DriverState>,
    worker_threads: Vec<Thread>,
    handles: Vec<JoinHandle<()>>,
    strip_rows: Vec<Range<usize>>,
    n_rows: usize,
    n_cols: usize,
    nnz_stored: usize,
    matrix_bytes: usize,
    pin_oversubscribed: bool,
}

/// Shared strip-conversion closure, cloned into every deferred worker.
type BuildFn<T, F> = Arc<dyn Fn(&Csr<T>) -> F + Send + Sync>;

/// How a worker obtains its strip: pre-built on the caller (the classic
/// path), or deferred so the conversion runs on the pinned worker and
/// the strip's pages are first-touched on the local node.
enum StripSource<T: Scalar, F> {
    Built(F),
    Deferred { sub: Csr<T>, build: BuildFn<T, F> },
}

impl<T: Scalar> SpmvPool<T> {
    /// Builds a pool from explicit `(rows, strip)` pairs.
    ///
    /// Strips must be sorted, non-empty, mutually disjoint, and contained
    /// in `0..n_rows`; rows not covered by any strip yield zeros. Use
    /// [`SpmvPool::from_csr`] for the common weight-balanced path.
    ///
    /// # Panics
    ///
    /// Panics if a strip range is empty, out of bounds, or overlaps its
    /// predecessor, or if a strip's shape disagrees with its range.
    pub fn new<F>(strips: Vec<(Range<usize>, F)>, n_rows: usize, n_cols: usize, pin: PinPolicy) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        for (rows, mat) in &strips {
            assert_eq!(mat.n_rows(), rows.len(), "strip shape disagrees with its range");
            assert_eq!(mat.n_cols(), n_cols, "strip column count disagrees");
        }
        Self::build_inner(
            strips
                .into_iter()
                .map(|(r, m)| (r, StripSource::Built(m)))
                .collect(),
            n_rows,
            n_cols,
            pin,
            None,
        )
    }

    /// The shared constructor behind every public entry point: validates
    /// the strip ranges, spawns the workers (pre-built or deferred
    /// first-touch strips), wires up an optional heavy-row split, and
    /// records pin oversubscription.
    fn build_inner<F>(
        sources: Vec<(Range<usize>, StripSource<T, F>)>,
        n_rows: usize,
        n_cols: usize,
        pin: PinPolicy,
        split_plan: Option<(usize, Vec<usize>, Vec<T>)>,
    ) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        let mut prev_end = 0usize;
        for (rows, _) in &sources {
            assert!(!rows.is_empty(), "empty strip {rows:?}");
            assert!(rows.start >= prev_end, "strips overlap or are unsorted at {rows:?}");
            assert!(rows.end <= n_rows, "strip {rows:?} exceeds {n_rows} rows");
            prev_end = rows.end;
        }
        let strip_rows: Vec<Range<usize>> = sources.iter().map(|(r, _)| r.clone()).collect();
        let n_strips = sources.len();

        let pin_oversubscribed = pin.oversubscribed(n_strips);
        if pin_oversubscribed {
            spmv_telemetry::counter("pool.pin_oversubscribed", 1);
        }

        // Pre-built strips are summed here; deferred strips report their
        // stats over the channel once built on their workers.
        let mut nnz_stored = 0usize;
        let mut matrix_bytes = 0usize;
        let mut n_deferred = 0usize;
        for (_, src) in &sources {
            match src {
                StripSource::Built(m) => {
                    nnz_stored += m.nnz_stored();
                    matrix_bytes += m.matrix_bytes();
                }
                StripSource::Deferred { .. } => n_deferred += 1,
            }
        }

        // Heavy-row split: one contiguous product segment per worker.
        let mut segs: Vec<Option<SplitSeg<T>>> = (0..n_strips).map(|_| None).collect();
        let split = split_plan.map(|(row, cols, vals)| {
            let nnz = cols.len();
            nnz_stored += nnz;
            matrix_bytes += nnz * (core::mem::size_of::<usize>() + T::BYTES);
            for (w, r) in split_segments(nnz, n_strips.max(1)).into_iter().enumerate() {
                if w < n_strips && !r.is_empty() {
                    segs[w] = Some(SplitSeg {
                        cols: cols[r.clone()].to_vec(),
                        vals: vals[r.clone()].to_vec(),
                        offset: r.start,
                    });
                }
            }
            SplitShared {
                row,
                nnz,
                scratch: SharedOutput::zeroed(nnz * POOL_EPOCH_K),
            }
        });

        // Workers + the driving thread all need their own hardware
        // thread for busy-waiting to be profitable.
        let oversubscribed = n_strips + 1 > crate::affinity::available_cores();
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            spin_budget: if oversubscribed { 0 } else { WORKER_SPINS },
            x: XSlot::new(),
            y: SharedOutput::zeroed(n_rows),
            y_multi: SharedOutput::zeroed(n_rows * POOL_EPOCH_K),
            split,
            workers: (0..n_strips).map(|_| WorkerState::new()).collect(),
        });

        let (stats_tx, stats_rx) = std::sync::mpsc::channel();
        let mut handles = Vec::with_capacity(n_strips);
        let mut worker_threads = Vec::with_capacity(n_strips);
        for (idx, ((rows, src), seg)) in sources.into_iter().zip(segs).enumerate() {
            let shared = Arc::clone(&shared);
            let core = pin.core_for(idx);
            let stats = matches!(src, StripSource::Deferred { .. }).then(|| stats_tx.clone());
            let handle = thread::Builder::new()
                .name(format!("spmv-pool-{idx}"))
                .spawn(move || worker_loop(shared, idx, rows, src, core, seg, stats))
                .expect("spawn pool worker");
            worker_threads.push(handle.thread().clone());
            handles.push(handle);
        }
        drop(stats_tx);

        // Block until every deferred strip is built (also the moment any
        // build failure surfaces — tear the pool down and propagate).
        let mut failures: Vec<String> = Vec::new();
        for _ in 0..n_deferred {
            match stats_rx.recv() {
                Ok(Ok((nnz, bytes))) => {
                    nnz_stored += nnz;
                    matrix_bytes += bytes;
                }
                Ok(Err(msg)) => failures.push(msg),
                Err(_) => failures.push("pool worker exited during strip construction".into()),
            }
        }
        if !failures.is_empty() {
            shared.epoch.store(SHUTDOWN, Ordering::Release);
            for t in &worker_threads {
                t.unpark();
            }
            for h in handles {
                let _ = h.join();
            }
            panic!("pool strip construction failed: {}", failures.join("; "));
        }

        SpmvPool {
            shared,
            driver: Mutex::new(DriverState { epoch: 0 }),
            worker_threads,
            handles,
            strip_rows,
            n_rows,
            n_cols,
            nnz_stored,
            matrix_bytes,
            pin_oversubscribed,
        }
    }

    /// Consumes a scoped-thread [`ParallelSpmv`] and re-hosts its strips
    /// on a persistent pool.
    pub fn from_parallel<F>(par: ParallelSpmv<F>, pin: PinPolicy) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        let (strips, n_rows, n_cols) = par.into_parts();
        Self::new(strips, n_rows, n_cols, pin)
    }

    /// Partitions `csr` into `n_threads` weight-balanced strips (same
    /// rules as [`ParallelSpmv::from_csr`]) and hosts them on a pool.
    pub fn from_csr<F>(
        csr: &Csr<T>,
        n_threads: usize,
        unit_weights: &[u64],
        unit_height: usize,
        build: impl Fn(&Csr<T>) -> F,
        pin: PinPolicy,
    ) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        Self::from_parallel(
            ParallelSpmv::from_csr(csr, n_threads, unit_weights, unit_height, build),
            pin,
        )
    }

    /// Like [`SpmvPool::from_csr`], but NUMA-aware per `placement`:
    ///
    /// * with `placement.first_touch`, each strip's format conversion
    ///   runs **on its own pinned worker**, so the strip's matrix pages
    ///   — and, via untouched zero pages, its output slots — are
    ///   first-touched on the worker's memory domain;
    /// * with `placement.nnz_split` (row-granular partitions only,
    ///   `unit_height == 1`), a single row heavier than the ideal
    ///   per-worker share is sheared across all workers and merged by
    ///   the driver in a bitwise-reproducible order (the result is
    ///   exactly the serial CSR result — see `docs/NUMA.md`);
    /// * `placement.pin` places workers, with [`PinPolicy::Domains`]
    ///   spreading them round-robin across memory domains.
    ///
    /// With [`Placement::pinned`] this behaves exactly like
    /// [`SpmvPool::from_csr`].
    pub fn from_csr_placed<F>(
        csr: &Csr<T>,
        n_threads: usize,
        unit_weights: &[u64],
        unit_height: usize,
        build: impl Fn(&Csr<T>) -> F + Send + Sync + 'static,
        placement: Placement,
    ) -> Self
    where
        F: SpMvMulti<T> + Send + 'static,
    {
        assert!(n_threads > 0, "at least one thread required");
        let n_rows = csr.n_rows();
        let split_row = if placement.nnz_split && unit_height == 1 {
            heavy_unit(unit_weights, n_threads)
        } else {
            None
        };

        // With a sheared row, the strips are built from the matrix with
        // that row emptied and the partition re-balanced without it.
        let (split_plan, rest) = match split_row {
            Some(row) => {
                let (cols_raw, vals_raw) = csr.row(row);
                let cols: Vec<usize> = cols_raw.iter().map(|&c| c as usize).collect();
                (Some((row, cols, vals_raw.to_vec())), Some(remove_row(csr, row)))
            }
            None => (None, None),
        };
        let source = rest.as_ref().unwrap_or(csr);
        let weights_rest;
        let weights = match split_row {
            Some(row) => {
                let mut w = unit_weights.to_vec();
                w[row] = 0;
                weights_rest = w;
                &weights_rest[..]
            }
            None => unit_weights,
        };
        let ranges: Vec<Range<usize>> =
            units_to_rows(&partition_units(weights, n_threads), unit_height, n_rows)
                .into_iter()
                .filter(|r| !r.is_empty())
                .collect();

        let build: BuildFn<T, F> = Arc::new(build);
        let sources: Vec<(Range<usize>, StripSource<T, F>)> = ranges
            .into_iter()
            .map(|r| {
                let sub = source.row_slice(r.clone());
                let src = if placement.first_touch {
                    StripSource::Deferred {
                        sub,
                        build: Arc::clone(&build),
                    }
                } else {
                    StripSource::Built(build(&sub))
                };
                (r, src)
            })
            .collect();
        Self::build_inner(sources, n_rows, csr.n_cols(), placement.pin, split_plan)
    }

    /// Number of live workers (= non-empty strips, ≤ requested threads).
    pub fn n_workers(&self) -> usize {
        self.strip_rows.len()
    }

    /// Whether the pin policy would land two workers on one core (also
    /// emitted as the `pool.pin_oversubscribed` telemetry counter at
    /// construction). See [`PinPolicy::oversubscribed`].
    pub fn pin_oversubscribed(&self) -> bool {
        self.pin_oversubscribed
    }

    /// The row sheared across workers by the nnz-split fallback, if the
    /// placement activated one.
    pub fn split_row(&self) -> Option<usize> {
        self.shared.split.as_ref().map(|s| s.row)
    }

    /// The row ranges assigned to each worker.
    pub fn strip_rows(&self) -> Vec<Range<usize>> {
        self.strip_rows.clone()
    }

    /// Epochs (SpMV calls) completed by the pool so far.
    pub fn iterations(&self) -> u64 {
        self.driver.lock().unwrap_or_else(|e| e.into_inner()).epoch
    }

    /// Per-strip timing summaries (see [`StripReport`]).
    pub fn strip_reports(&self) -> Vec<StripReport> {
        self.strip_rows
            .iter()
            .zip(&self.shared.workers)
            .map(|(rows, w)| {
                let t = w.timing.lock().unwrap_or_else(|e| e.into_inner());
                StripReport {
                    rows: rows.clone(),
                    iterations: t.window.count(),
                    min_ns: t.window.min(),
                    median_ns: t.window.median(),
                    respawned: t.thread_ids.len() > 1,
                    pinned: t.pinned,
                }
            })
            .collect()
    }

    /// The distinct OS thread ids that have served each strip, in order
    /// of first observation. A healthy pool has exactly one per strip —
    /// the respawn-detection hook used by the equivalence tests.
    pub fn worker_thread_ids(&self) -> Vec<Vec<ThreadId>> {
        self.shared
            .workers
            .iter()
            .map(|w| {
                w.timing
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .thread_ids
                    .clone()
            })
            .collect()
    }

    /// Median measured seconds per iteration for every strip — the
    /// measured-imbalance input to
    /// `spmv_model::multicore::predict_threaded_measured`.
    ///
    /// Returns `None` until every strip has completed at least one
    /// timed iteration (run a warm-up [`SpMv::spmv`] first).
    pub fn measured_strip_seconds(&self) -> Option<Vec<f64>> {
        let reports = self.strip_reports();
        if reports.is_empty() || reports.iter().any(|r| r.iterations == 0) {
            return None;
        }
        Some(reports.iter().map(|r| r.median_ns as f64 * 1e-9).collect())
    }

    /// Shuts the workers down and joins them. Idempotent: the first call
    /// tears the pool down, later calls (and `Drop`, which runs the same
    /// path) are no-ops.
    ///
    /// After shutdown the pool still answers metadata queries
    /// ([`SpmvPool::strip_reports`], [`SpmvPool::iterations`], ...), but
    /// any further [`SpMv::spmv_into`] / [`SpMvMulti::spmv_multi_into`]
    /// call panics rather than waiting on workers that no longer exist.
    ///
    /// Requires `&mut self` (exclusive ownership): a pool shared behind
    /// an `Arc` is instead shut down by dropping the last handle.
    pub fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.shared.epoch.store(SHUTDOWN, Ordering::Release);
        for t in &self.worker_threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Whether [`SpmvPool::shutdown`] has already run (a pool built with
    /// zero strips counts as shut down — it never had workers).
    pub fn is_shut_down(&self) -> bool {
        self.handles.is_empty()
    }

    /// Runs one epoch: publish `x` (holding `k` input vectors), wake the
    /// workers, wait for all strips, and return the guard that keeps the
    /// pool quiescent while the caller copies the output out.
    fn run_epoch(&self, x: &[T], k: usize) -> MutexGuard<'_, DriverState> {
        assert!(
            !self.handles.is_empty(),
            "SpmvPool used after shutdown(): no workers are left to serve the epoch"
        );
        // Covers publish → every strip done (not the caller's copy-out).
        let _epoch_span = spmv_telemetry::span_with("pool.epoch", k as u64);
        let mut st = self.driver.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the driver lock is held and every worker's `done`
        // equals `st.epoch`, so no worker is reading the slot.
        unsafe { self.shared.x.set(x, k) };
        st.epoch += 1;
        self.shared.epoch.store(st.epoch, Ordering::Release);
        for t in &self.worker_threads {
            t.unpark();
        }
        let spin_budget = if self.shared.spin_budget == 0 {
            0
        } else {
            DRIVER_SPINS
        };
        for w in &self.shared.workers {
            let mut spins = 0u32;
            while w.done.load(Ordering::Acquire) < st.epoch {
                spins = spins.saturating_add(1);
                if spins < spin_budget {
                    core::hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
        assert!(
            !self.shared.poisoned.load(Ordering::Acquire),
            "a pool worker panicked during SpMV"
        );
        st
    }

    /// Folds the heavy-row product scratch into one sum per epoch
    /// vector, in nonzero order — the deterministic merge reduction.
    ///
    /// The products were computed by the workers with the same multiply
    /// the serial CSR kernel uses, and this fold adds them in the same
    /// order with the same `product + acc` operand shape, so the merged
    /// value is bitwise-equal to the serial row result. Must be called
    /// while the guard returned by [`SpmvPool::run_epoch`] is alive (the
    /// scratch read requires quiescence).
    fn merge_split(&self, k: usize) -> Option<(usize, Vec<T>)> {
        let sp = self.shared.split.as_ref()?;
        // SAFETY: the caller holds the epoch guard, so no worker is
        // writing the scratch.
        let scratch = unsafe { sp.scratch.as_slice() };
        let sums = (0..k)
            .map(|t| {
                let mut acc = T::ZERO;
                for &p in &scratch[t * sp.nnz..(t + 1) * sp.nnz] {
                    acc = p + acc;
                }
                acc
            })
            .collect();
        Some((sp.row, sums))
    }
}

impl<T: Scalar> MatrixShape for SpmvPool<T> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }
    fn n_cols(&self) -> usize {
        self.n_cols
    }
}

impl<T: Scalar> SpMv<T> for SpmvPool<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        spmv_core::traits::check_spmv_dims(self, x, y);
        if self.n_rows == 0 {
            return;
        }
        if self.shared.workers.is_empty() {
            y.fill(T::ZERO);
            return;
        }
        let guard = self.run_epoch(x, 1);
        let merged = self.merge_split(1);
        // SAFETY: `guard` keeps the pool quiescent; uncovered rows were
        // zero-initialized and are never written, so a straight copy is
        // complete.
        y.copy_from_slice(unsafe { self.shared.y.as_slice() });
        drop(guard);
        // The sheared row is empty in every strip; its merged sum wins.
        if let Some((row, sums)) = merged {
            y[row] = sums[0];
        }
    }

    fn nnz_stored(&self) -> usize {
        self.nnz_stored
    }

    fn matrix_bytes(&self) -> usize {
        self.matrix_bytes
    }
}

impl<T: Scalar> SpMvMulti<T> for SpmvPool<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        spmv_core::traits::check_spmv_multi_dims(self, x, y, k);
        if self.n_rows == 0 {
            return;
        }
        y.fill(T::ZERO); // rows not covered by any strip stay zero
        if self.shared.workers.is_empty() {
            return;
        }
        let (m, n) = (self.n_cols, self.n_rows);
        let mut t0 = 0;
        while t0 < k {
            let kc = (k - t0).min(POOL_EPOCH_K);
            let guard = self.run_epoch(&x[t0 * m..(t0 + kc) * m], kc);
            let merged = self.merge_split(kc);
            // SAFETY (both arms): `guard` keeps the pool quiescent while
            // the epoch's output is copied out.
            if kc == 1 {
                let src = unsafe { self.shared.y.as_slice() };
                y[t0 * n..(t0 + 1) * n].copy_from_slice(src);
            } else {
                let slab = unsafe { self.shared.y_multi.as_slice() };
                for rows in &self.strip_rows {
                    let h = rows.len();
                    let base = rows.start * POOL_EPOCH_K;
                    for t in 0..kc {
                        y[(t0 + t) * n + rows.start..(t0 + t) * n + rows.end]
                            .copy_from_slice(&slab[base + t * h..base + (t + 1) * h]);
                    }
                }
            }
            drop(guard);
            if let Some((row, sums)) = merged {
                for (t, s) in sums.into_iter().enumerate() {
                    y[(t0 + t) * n + row] = s;
                }
            }
            t0 += kc;
        }
    }
}

impl<T: Scalar> core::fmt::Debug for SpmvPool<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SpmvPool")
            .field("n_rows", &self.n_rows)
            .field("n_cols", &self.n_cols)
            .field("strip_rows", &self.strip_rows)
            .field("iterations", &self.iterations())
            .finish()
    }
}

impl<T: Scalar> Drop for SpmvPool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The body of one pool worker: pin, build the strip if it was deferred
/// for first-touch placement, then serve epochs until shutdown.
fn worker_loop<T: Scalar, F: SpMvMulti<T>>(
    shared: Arc<PoolShared<T>>,
    idx: usize,
    rows: Range<usize>,
    source: StripSource<T, F>,
    core: Option<usize>,
    split_seg: Option<SplitSeg<T>>,
    stats: Option<std::sync::mpsc::Sender<Result<(usize, usize), String>>>,
) {
    // Best-effort: a rejected mask (e.g. restricted cpuset) leaves the
    // worker unpinned but fully functional; the outcome is recorded so
    // placement-sensitive callers can detect the degradation.
    let pin_result = core.map(crate::affinity::pin_current_thread);
    let me = &shared.workers[idx];
    {
        let mut t = me.timing.lock().unwrap_or_else(|e| e.into_inner());
        t.note_thread(thread::current().id());
        t.pinned = pin_result;
    }

    // Deferred strips are converted here, *after* pinning, so the
    // format's pages are first-touched on this worker's memory domain.
    let mat = match source {
        StripSource::Built(m) => m,
        StripSource::Deferred { sub, build } => {
            let built = catch_unwind(AssertUnwindSafe(|| {
                let m = build(&sub);
                assert_eq!(m.n_rows(), rows.len(), "strip shape disagrees with its range");
                assert_eq!(m.n_cols(), sub.n_cols(), "strip column count disagrees");
                m
            }));
            match built {
                Ok(m) => {
                    if let Some(tx) = &stats {
                        let _ = tx.send(Ok((m.nnz_stored(), m.matrix_bytes())));
                    }
                    m
                }
                Err(_) => {
                    shared.poisoned.store(true, Ordering::Release);
                    if let Some(tx) = &stats {
                        let _ = tx.send(Err(format!("strip {idx} build panicked")));
                    }
                    return;
                }
            }
        }
    };
    drop(stats);

    let mut done = 0u64;
    loop {
        let target = done + 1;
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e == SHUTDOWN {
                return;
            }
            if e >= target {
                break;
            }
            spins = spins.saturating_add(1);
            if spins < shared.spin_budget {
                core::hint::spin_loop();
            } else if spins < shared.spin_budget + WORKER_YIELDS {
                thread::yield_now();
            } else {
                thread::park_timeout(PARK_INTERVAL);
            }
        }

        // Latch the telemetry decision for the whole strip: if recording
        // is enabled mid-strip, `ts0` would still be the bogus epoch
        // anchor 0, so the span must not be emitted this round.
        let armed = spmv_telemetry::enabled();
        let ts0 = if armed { spmv_telemetry::now_ns() } else { 0 };
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: we are inside epoch `target`: the driver published
            // `x` before the epoch store we just observed, blocks until
            // our `done` store below, and `rows` (resp. this strip's
            // region of the multi slab) is this worker's exclusive,
            // validated-disjoint output range.
            let (x, k) = unsafe { shared.x.get() };
            if k <= 1 {
                let y = unsafe { shared.y.slice_mut(rows.clone()) };
                mat.spmv_into(x, y);
            } else {
                let base = rows.start * POOL_EPOCH_K;
                let y = unsafe { shared.y_multi.slice_mut(base..base + rows.len() * k) };
                mat.spmv_multi_into(x, y, k);
            }
            // Heavy-row split: write this worker's segment of products
            // (never partial sums — the driver's in-order fold is what
            // keeps the merge bitwise-equal to the serial kernel).
            if let (Some(seg), Some(sp)) = (&split_seg, &shared.split) {
                let kk = k.max(1);
                let m = x.len() / kk.max(1);
                for t in 0..kk {
                    let xt = &x[t * m..(t + 1) * m];
                    let base = t * sp.nnz + seg.offset;
                    // SAFETY: segments partition the row's nonzeros, so
                    // this range is disjoint from every other worker's.
                    let out = unsafe { sp.scratch.slice_mut(base..base + seg.cols.len()) };
                    for ((o, &c), &v) in out.iter_mut().zip(&seg.cols).zip(&seg.vals) {
                        *o = v * xt[c];
                    }
                }
            }
        }));
        let ns = t0.elapsed().as_nanos() as u64;
        if armed {
            spmv_telemetry::complete("pool.strip", ts0, ns, idx as u64);
        }
        match result {
            Ok(()) => me
                .timing
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(ns, thread::current().id()),
            Err(_) => shared.poisoned.store(true, Ordering::Release),
        }
        done = target;
        me.done.store(done, Ordering::Release);
    }
}

/// A copy of `csr` with row `row`'s nonzeros dropped — the row itself
/// stays (empty), so shapes and strip boundaries are unchanged. Values
/// and intra-row column order are preserved exactly, so the rest-matrix
/// rows stay bitwise-identical to the original rows.
fn remove_row<T: Scalar>(csr: &Csr<T>, row: usize) -> Csr<T> {
    let mut coo = spmv_core::Coo::new(csr.n_rows(), csr.n_cols());
    for i in 0..csr.n_rows() {
        if i == row {
            continue;
        }
        let (cols, vals) = csr.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            let _ = coo.push(i, c as usize, v);
        }
    }
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::csr_unit_weights;
    use spmv_core::Coo;

    fn fixture(n: usize, m: usize) -> Csr<f64> {
        let mut coo = Coo::new(n, m);
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            for _ in 0..1 + (next() as usize) % 4 {
                let _ = coo.push(i, (next() as usize) % m, 1.0 + (next() % 5) as f64);
            }
        }
        Csr::from_coo(&coo)
    }

    fn pool_for(csr: &Csr<f64>, threads: usize) -> SpmvPool<f64> {
        SpmvPool::from_csr(
            csr,
            threads,
            &csr_unit_weights(csr),
            1,
            Csr::clone,
            PinPolicy::None,
        )
    }

    #[test]
    fn pool_matches_sequential_csr_bitwise() {
        let csr = fixture(113, 67);
        let x: Vec<f64> = (0..67).map(|i| 1.0 + (i % 11) as f64).collect();
        let want = csr.spmv(&x);
        for threads in [1, 2, 4, 8] {
            let pool = pool_for(&csr, threads);
            assert_eq!(pool.spmv(&x), want, "threads = {threads}");
        }
    }

    #[test]
    fn repeated_calls_reuse_the_same_threads() {
        let csr = fixture(64, 64);
        let x = vec![1.0; 64];
        let pool = pool_for(&csr, 4);
        let want = csr.spmv(&x);
        let mut y = vec![0.0; 64];
        for _ in 0..1000 {
            pool.spmv_into(&x, &mut y);
        }
        assert_eq!(y, want);
        assert_eq!(pool.iterations(), 1000);
        let ids = pool.worker_thread_ids();
        assert_eq!(ids.len(), pool.n_workers());
        for per_strip in &ids {
            assert_eq!(per_strip.len(), 1, "strip was served by more than one thread");
        }
        for report in pool.strip_reports() {
            assert_eq!(report.iterations, 1000);
            assert!(!report.respawned);
            assert!(report.min_ns > 0);
            assert!(report.median_ns >= report.min_ns);
        }
    }

    #[test]
    fn pool_multi_matches_sequential_csr_bitwise() {
        let csr = fixture(113, 67);
        for threads in [1, 2, 4] {
            let pool = pool_for(&csr, threads);
            // k = 9 exercises an 8-vector epoch plus a single-vector one.
            for k in [1, 2, 4, 9] {
                let x: Vec<f64> = (0..67 * k).map(|i| 1.0 + (i % 11) as f64).collect();
                let got = pool.spmv_multi(&x, k);
                for t in 0..k {
                    let want = csr.spmv(&x[t * 67..(t + 1) * 67]);
                    assert_eq!(got[t * 113..(t + 1) * 113], want, "threads={threads} k={k} t={t}");
                }
            }
        }
    }

    #[test]
    fn pool_interleaves_single_and_multi_epochs() {
        let csr = fixture(48, 48);
        let pool = pool_for(&csr, 2);
        let x1 = vec![1.0; 48];
        let want1 = csr.spmv(&x1);
        let x4: Vec<f64> = (0..48 * 4).map(|i| 0.5 + (i % 5) as f64).collect();
        for _ in 0..3 {
            assert_eq!(pool.spmv(&x1), want1);
            let got = pool.spmv_multi(&x4, 4);
            for t in 0..4 {
                assert_eq!(got[t * 48..(t + 1) * 48], csr.spmv(&x4[t * 48..(t + 1) * 48]));
            }
        }
    }

    #[test]
    fn uncovered_rows_stay_zero_in_multi() {
        let csr = fixture(9, 9);
        let mid = csr.row_slice(3..6);
        let pool = SpmvPool::new(vec![(3..6, mid)], 9, 9, PinPolicy::None);
        let x: Vec<f64> = (0..18).map(|i| 1.0 + i as f64).collect();
        let got = pool.spmv_multi(&x, 2);
        for t in 0..2 {
            let want = csr.spmv(&x[t * 9..(t + 1) * 9]);
            for i in 0..9 {
                let expect = if (3..6).contains(&i) { want[i] } else { 0.0 };
                assert_eq!(got[t * 9 + i], expect, "t={t} row {i}");
            }
        }
    }

    #[test]
    fn timings_become_available_after_first_call() {
        let csr = fixture(40, 40);
        let pool = pool_for(&csr, 2);
        assert!(pool.measured_strip_seconds().is_none());
        let _ = pool.spmv(&vec![1.0; 40]);
        let t = pool.measured_strip_seconds().expect("timed after one call");
        assert_eq!(t.len(), pool.n_workers());
        assert!(t.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn empty_matrix_pool() {
        let csr = Csr::<f64>::from_coo(&Coo::new(0, 5));
        let pool = pool_for(&csr, 3);
        assert_eq!(pool.n_workers(), 0);
        assert_eq!(pool.spmv(&[1.0; 5]), Vec::<f64>::new());
    }

    #[test]
    fn more_threads_than_rows_pool() {
        let csr = fixture(3, 6);
        let pool = pool_for(&csr, 16);
        assert!(pool.n_workers() <= 3);
        let x = vec![1.0; 6];
        assert_eq!(pool.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn pinned_pool_still_computes_correctly() {
        let csr = fixture(50, 50);
        let x = vec![2.0; 50];
        let want = csr.spmv(&x);
        let pool = SpmvPool::from_csr(
            &csr,
            2,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Compact,
        );
        assert_eq!(pool.spmv(&x), want);
    }

    #[test]
    fn nnz_and_bytes_aggregate_like_scoped_driver() {
        let csr = fixture(60, 60);
        let par = ParallelSpmv::from_csr(&csr, 4, &csr_unit_weights(&csr), 1, Csr::clone);
        let (par_nnz, par_bytes) = (par.nnz_stored(), par.matrix_bytes());
        let pool = SpmvPool::from_parallel(par, PinPolicy::None);
        assert_eq!(pool.nnz_stored(), par_nnz);
        assert_eq!(pool.matrix_bytes(), par_bytes);
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_workers() {
        let csr = fixture(40, 40);
        let x = vec![1.0; 40];
        let mut pool = pool_for(&csr, 2);
        let want = csr.spmv(&x);
        assert_eq!(pool.spmv(&x), want);
        assert!(!pool.is_shut_down());
        pool.shutdown();
        assert!(pool.is_shut_down());
        pool.shutdown(); // second call is a no-op
        // Metadata stays readable after shutdown.
        assert_eq!(pool.iterations(), 1);
        for report in pool.strip_reports() {
            assert_eq!(report.iterations, 1);
        }
        // Drop after explicit shutdown must not hang or double-join.
        drop(pool);
    }

    #[test]
    #[should_panic(expected = "used after shutdown")]
    fn spmv_after_shutdown_panics_instead_of_hanging() {
        let csr = fixture(20, 20);
        let mut pool = pool_for(&csr, 2);
        pool.shutdown();
        let _ = pool.spmv(&vec![1.0; 20]);
    }

    #[test]
    fn arc_owned_pool_drops_cleanly_from_another_thread() {
        // The registry-ownership scenario: the pool lives inside an
        // `Arc`, handles are cloned across threads, and the last drop —
        // on whichever thread it lands — tears the workers down.
        let csr = fixture(50, 50);
        let x = vec![1.0; 50];
        let want = csr.spmv(&x);
        let pool = std::sync::Arc::new(pool_for(&csr, 2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                let (x, want) = (x.clone(), want.clone());
                thread::spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(pool.spmv(&x), want);
                    }
                    drop(pool); // one of these drops is the last one
                })
            })
            .collect();
        drop(pool);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn placed_pool_first_touch_matches_bitwise() {
        let csr = fixture(97, 53);
        let x: Vec<f64> = (0..53).map(|i| 0.25 + (i % 7) as f64).collect();
        let want = csr.spmv(&x);
        for threads in [1, 2, 4] {
            let placement = Placement {
                pin: PinPolicy::None,
                first_touch: true,
                nnz_split: false,
            };
            let pool = SpmvPool::from_csr_placed(
                &csr,
                threads,
                &csr_unit_weights(&csr),
                1,
                Csr::clone,
                placement,
            );
            assert_eq!(pool.spmv(&x), want, "threads = {threads}");
            // Deferred builds must aggregate the same stats as eager ones.
            let eager = pool_for(&csr, threads);
            assert_eq!(pool.nnz_stored(), eager.nnz_stored());
            assert_eq!(pool.matrix_bytes(), eager.matrix_bytes());
        }
    }

    #[test]
    fn split_pool_shears_a_heavy_row_and_stays_bitwise() {
        // Row 2 holds most of the matrix: heavier than any ideal share.
        let mut coo = Coo::new(8, 64);
        for j in 0..60 {
            let _ = coo.push(2, j, 1.0 + (j % 9) as f64 * 0.125);
        }
        for i in 0..8 {
            let _ = coo.push(i, (7 * i + 3) % 64, 2.5 + i as f64);
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..64).map(|i| 0.5 + (i % 13) as f64 * 0.25).collect();
        let want = csr.spmv(&x);
        for threads in [2, 3, 4] {
            let placement = Placement {
                pin: PinPolicy::None,
                first_touch: false,
                nnz_split: true,
            };
            let pool = SpmvPool::from_csr_placed(
                &csr,
                threads,
                &csr_unit_weights(&csr),
                1,
                Csr::clone,
                placement,
            );
            assert_eq!(pool.split_row(), Some(2), "threads = {threads}");
            assert_eq!(pool.spmv(&x), want, "threads = {threads}");
            // Multi-vector epochs merge per vector.
            let k = 9; // one 8-wide epoch + one single
            let xk: Vec<f64> = (0..64 * k).map(|i| 0.1 + (i % 17) as f64 * 0.5).collect();
            let got = pool.spmv_multi(&xk, k);
            for t in 0..k {
                let want_t = csr.spmv(&xk[t * 64..(t + 1) * 64]);
                assert_eq!(got[t * 8..(t + 1) * 8], want_t, "threads={threads} t={t}");
            }
        }
    }

    #[test]
    fn split_does_not_trigger_on_balanced_matrices() {
        let csr = fixture(64, 64);
        let placement = Placement {
            pin: PinPolicy::None,
            first_touch: false,
            nnz_split: true,
        };
        let pool = SpmvPool::from_csr_placed(
            &csr,
            2,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            placement,
        );
        // The fixture spreads 1–4 nnz per row; no row exceeds half the total.
        assert_eq!(pool.split_row(), None);
    }

    #[test]
    fn single_row_matrix_splits_to_one_worker_and_stays_bitwise() {
        // Pathological: every nonzero in one row — the rest partition
        // collapses to one covering strip and the split is segment 0..nnz.
        let mut coo = Coo::new(4, 40);
        for j in 0..40 {
            let _ = coo.push(1, j, 0.75 + (j % 5) as f64);
        }
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..40).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
        let pool = SpmvPool::from_csr_placed(
            &csr,
            4,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            Placement {
                pin: PinPolicy::None,
                first_touch: false,
                nnz_split: true,
            },
        );
        assert_eq!(pool.split_row(), Some(1));
        assert_eq!(pool.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn oversubscribed_pin_policy_is_recorded() {
        let csr = fixture(30, 30);
        // Two workers forced onto one core: oversubscribed by definition.
        let pool = SpmvPool::from_csr(
            &csr,
            2,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Cores(vec![0]),
        );
        assert!(pool.pin_oversubscribed());
        let unpinned = pool_for(&csr, 2);
        assert!(!unpinned.pin_oversubscribed());
    }

    #[test]
    fn pin_failure_is_recorded_and_results_stay_bitwise() {
        let csr = fixture(40, 40);
        let x = vec![1.5; 40];
        let want = csr.spmv(&x);
        // An absurd core index: pin_current_thread refuses it, the pool
        // runs unpinned, and the strip reports say so.
        let pool = SpmvPool::from_csr(
            &csr,
            2,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Cores(vec![1 << 20]),
        );
        assert_eq!(pool.spmv(&x), want);
        for report in pool.strip_reports() {
            assert_eq!(report.pinned, Some(false), "pin should have failed");
        }
        // No-pin policies report no pin attempt at all.
        for report in pool_for(&csr, 2).strip_reports() {
            assert_eq!(report.pinned, None);
        }
    }

    #[test]
    fn domain_placed_pool_computes_correctly_on_fake_topology() {
        let csr = fixture(80, 80);
        let x: Vec<f64> = (0..80).map(|i| 0.5 + (i % 9) as f64).collect();
        let want = csr.spmv(&x);
        let topo = crate::topology::Topology::from_domains(vec![vec![0], vec![1]]);
        let pool = SpmvPool::from_csr_placed(
            &csr,
            2,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            Placement::domain_aware(topo),
        );
        assert_eq!(pool.spmv(&x), want);
    }

    #[test]
    #[should_panic(expected = "strips overlap")]
    fn overlapping_strips_are_rejected() {
        let csr = fixture(10, 10);
        let a = csr.row_slice(0..6);
        let b = csr.row_slice(4..10);
        let _ = SpmvPool::new(vec![(0..6, a), (4..10, b)], 10, 10, PinPolicy::None);
    }

    #[test]
    fn uncovered_rows_stay_zero() {
        // A strip covering only the middle rows: everything else is 0.
        let csr = fixture(9, 9);
        let mid = csr.row_slice(3..6);
        let pool = SpmvPool::new(vec![(3..6, mid)], 9, 9, PinPolicy::None);
        let x = vec![1.0; 9];
        let y = pool.spmv(&x);
        let want = csr.spmv(&x);
        for i in 0..9 {
            let expect = if (3..6).contains(&i) { want[i] } else { 0.0 };
            assert_eq!(y[i], expect, "row {i}");
        }
    }
}
