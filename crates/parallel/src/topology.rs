//! Memory-domain (NUMA) topology discovery and worker placement.
//!
//! The paper's testbed is a single-socket machine, so its multithreaded
//! model (§V-A) can assume one shared memory controller. Past four
//! threads that assumption breaks: strips spanning sockets stream from
//! *different* controllers, and a strip whose pages live on the remote
//! node pays the interconnect instead of local DRAM
//! (Schubert/Hager/Fehske, arXiv:0910.4836). This module gives the
//! runtime the map it needs to place workers and pages deliberately:
//!
//! * [`Topology::detect`] parses `/sys/devices/system/node/node*/cpulist`
//!   on Linux (the same sysfs surface `numactl --hardware` reads) and
//!   falls back to a single flat domain everywhere else;
//! * [`Topology::flat`] / [`Topology::from_domains`] are the injectable
//!   seams: tests construct an exact fake topology and every placement
//!   decision downstream is a pure function of it — deterministic on
//!   any box;
//! * [`Topology::core_for_worker`] / [`Topology::domain_for_worker`]
//!   define the placement rule used by `PinPolicy::Domains`: workers are
//!   dealt **round-robin across domains** (worker `i` → domain
//!   `i % D`), so a `t`-thread pool loads every memory controller with
//!   ⌈t/D⌉ strips instead of filling socket 0 first — aggregate
//!   bandwidth then sums over controllers, which is the whole point of
//!   scaling past one socket.
//!
//! The model-side mirror of this map is
//! `spmv_model::multicore::BandwidthHierarchy`, which charges each
//! strip's traffic against the domain its pages live on; the
//! first-touch allocation in [`crate::SpmvPool`] is what makes "its
//! pages" equal "its worker's domain".

use crate::affinity::available_cores;

/// The host's memory domains: one list of core ids per domain.
///
/// Constructed by [`Topology::detect`] (sysfs), [`Topology::flat`]
/// (single domain), or [`Topology::from_domains`] (explicit — the test
/// seam). Domains are kept in node order; every core id appears in at
/// most one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    domains: Vec<Vec<usize>>,
}

impl Topology {
    /// A single flat domain over cores `0..n_cores` — the topology of
    /// the paper's one-socket testbed, and the portable fallback when
    /// sysfs is absent. `n_cores` is clamped to at least 1.
    pub fn flat(n_cores: usize) -> Self {
        Topology {
            domains: vec![(0..n_cores.max(1)).collect()],
        }
    }

    /// An explicit topology — the injectable seam for deterministic
    /// tests (e.g. a fake two-socket box on a laptop).
    ///
    /// # Panics
    ///
    /// Panics if no domain is non-empty or a core id repeats across
    /// domains.
    pub fn from_domains(domains: Vec<Vec<usize>>) -> Self {
        let domains: Vec<Vec<usize>> = domains.into_iter().filter(|d| !d.is_empty()).collect();
        assert!(!domains.is_empty(), "topology needs at least one non-empty domain");
        let mut seen = std::collections::BTreeSet::new();
        for core in domains.iter().flatten() {
            assert!(seen.insert(*core), "core {core} appears in two domains");
        }
        Topology { domains }
    }

    /// Discovers the host topology from
    /// `/sys/devices/system/node/node*/cpulist`, falling back to
    /// [`Topology::flat`]`(available_cores())` when the sysfs tree is
    /// absent (non-Linux, restricted container) or unparseable.
    pub fn detect() -> Self {
        Self::detect_from("/sys/devices/system/node")
            .unwrap_or_else(|| Topology::flat(available_cores()))
    }

    /// The sysfs parser behind [`Topology::detect`], entered at an
    /// arbitrary root so tests can point it at a fixture directory.
    /// Returns `None` when no `node*/cpulist` yields any core.
    pub fn detect_from(root: &str) -> Option<Self> {
        let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
        for entry in std::fs::read_dir(root).ok()?.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(idx) = name.strip_prefix("node").and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let path = entry.path().join("cpulist");
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let cores = parse_cpulist(text.trim());
            if !cores.is_empty() {
                nodes.push((idx, cores));
            }
        }
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_by_key(|(idx, _)| *idx);
        let mut seen = std::collections::BTreeSet::new();
        for (_, cores) in &nodes {
            for &c in cores {
                if !seen.insert(c) {
                    return None; // overlapping nodes: distrust the tree
                }
            }
        }
        Some(Topology {
            domains: nodes.into_iter().map(|(_, cores)| cores).collect(),
        })
    }

    /// Number of memory domains (≥ 1).
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// Total cores across all domains.
    pub fn n_cores(&self) -> usize {
        self.domains.iter().map(Vec::len).sum()
    }

    /// The core lists, one per domain, in node order.
    pub fn domains(&self) -> &[Vec<usize>] {
        &self.domains
    }

    /// The domain holding `core`, if any.
    pub fn domain_of_core(&self, core: usize) -> Option<usize> {
        self.domains.iter().position(|d| d.contains(&core))
    }

    /// The domain the `worker`-th pool thread is dealt to: round-robin
    /// across domains (`worker % n_domains`), so every memory controller
    /// carries an equal share of strips.
    pub fn domain_for_worker(&self, worker: usize) -> usize {
        worker % self.domains.len()
    }

    /// The core the `worker`-th pool thread is pinned to under
    /// domain-spread placement: within its domain
    /// ([`Topology::domain_for_worker`]), consecutive visits take
    /// consecutive cores, wrapping when a domain is oversubscribed.
    pub fn core_for_worker(&self, worker: usize) -> usize {
        let d = self.domain_for_worker(worker);
        let cores = &self.domains[d];
        cores[(worker / self.domains.len()) % cores.len()]
    }

    /// The strip → domain map for an `n_workers`-strip pool — the
    /// assignment `spmv_model::multicore::predict_threaded_hierarchy`
    /// charges per-strip traffic with.
    pub fn domain_assignment(&self, n_workers: usize) -> Vec<usize> {
        (0..n_workers).map(|w| self.domain_for_worker(w)).collect()
    }
}

/// Parses a sysfs cpulist like `"0-3,8-11"` (single ids and inclusive
/// ranges, comma-separated) into a sorted core list. Malformed fields
/// are skipped rather than failing the whole list.
pub fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cores = Vec::new();
    for field in s.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = field.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi && hi - lo < 4096 {
                    cores.extend(lo..=hi);
                }
            }
        } else if let Ok(c) = field.parse::<usize>() {
            cores.push(c);
        }
    }
    cores.sort_unstable();
    cores.dedup();
    cores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cpulist_ranges_and_singles() {
        assert_eq!(parse_cpulist("0-3,8-11"), vec![0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist("3,1,2"), vec![1, 2, 3]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        // Malformed fields are skipped, not fatal.
        assert_eq!(parse_cpulist("junk,2,4-x,7-5"), vec![2]);
    }

    #[test]
    fn flat_topology_is_one_domain() {
        let t = Topology::flat(4);
        assert_eq!(t.n_domains(), 1);
        assert_eq!(t.n_cores(), 4);
        assert_eq!(t.domains()[0], vec![0, 1, 2, 3]);
        assert_eq!(Topology::flat(0).n_cores(), 1);
    }

    #[test]
    fn workers_spread_round_robin_across_domains() {
        let t = Topology::from_domains(vec![vec![0, 1], vec![2, 3]]);
        // Worker i lands on domain i % 2, filling cores within a domain
        // on successive visits.
        assert_eq!(t.domain_assignment(4), vec![0, 1, 0, 1]);
        assert_eq!(t.core_for_worker(0), 0);
        assert_eq!(t.core_for_worker(1), 2);
        assert_eq!(t.core_for_worker(2), 1);
        assert_eq!(t.core_for_worker(3), 3);
        // Oversubscription wraps within the domain.
        assert_eq!(t.core_for_worker(4), 0);
        assert_eq!(t.domain_for_worker(5), 1);
    }

    #[test]
    fn uneven_domains_wrap_independently() {
        let t = Topology::from_domains(vec![vec![0], vec![4, 5, 6]]);
        assert_eq!(t.core_for_worker(0), 0);
        assert_eq!(t.core_for_worker(1), 4);
        assert_eq!(t.core_for_worker(2), 0); // domain 0 wraps already
        assert_eq!(t.core_for_worker(3), 5);
        assert_eq!(t.domain_of_core(5), Some(1));
        assert_eq!(t.domain_of_core(9), None);
    }

    #[test]
    #[should_panic(expected = "two domains")]
    fn duplicate_cores_are_rejected() {
        let _ = Topology::from_domains(vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn detect_always_yields_a_usable_topology() {
        let t = Topology::detect();
        assert!(t.n_domains() >= 1);
        assert!(t.n_cores() >= 1);
    }

    #[test]
    fn detect_from_fixture_directory() {
        let dir = std::env::temp_dir().join(format!("spmv-topo-test-{}", std::process::id()));
        let mk = |node: &str, list: &str| {
            let d = dir.join(node);
            std::fs::create_dir_all(&d).unwrap();
            std::fs::write(d.join("cpulist"), list).unwrap();
        };
        mk("node0", "0-1\n");
        mk("node1", "2-3\n");
        let t = Topology::detect_from(dir.to_str().unwrap()).expect("fixture parses");
        assert_eq!(t.domains(), &[vec![0, 1], vec![2, 3]]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_from_missing_root_is_none() {
        assert!(Topology::detect_from("/nonexistent/spmv-topo").is_none());
    }
}
