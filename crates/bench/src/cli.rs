//! Minimal command-line parsing for the harness binaries.
//!
//! Every binary accepts the same core knobs:
//!
//! * `--scale F` — matrix size multiplier (default 0.25 for quick runs;
//!   use 1.0+ to leave the caches, 8.0 for paper-like footprints);
//! * `--seed N` — generator seed;
//! * `--min-time MS` — timing window per measurement in milliseconds;
//! * `--batches N` — best-of batches per measurement;
//! * `--matrices a,b,c` — restrict to specific suite ids;
//! * `--trace FILE` — record telemetry and write a chrome://tracing
//!   JSON file on exit (see `docs/OBSERVABILITY.md`);
//! * `--help` — print the option list.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    opts: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s from an iterator.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                // A value follows unless the next token is another option.
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.opts.insert(key.to_string(), v);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            }
        }
        out
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(String::as_str)
    }

    /// Float option with default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects a number")))
            .unwrap_or(default)
    }

    /// Integer option with default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects an integer")))
            .unwrap_or(default)
    }

    /// u64 option with default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} expects an integer")))
            .unwrap_or(default)
    }

    /// Comma-separated usize list (e.g. `--matrices 3,7,19`).
    pub fn get_usize_list(&self, name: &str) -> Option<Vec<usize>> {
        self.get(name).map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|t| {
                    t.parse()
                        .unwrap_or_else(|_| panic!("--{name} expects integers"))
                })
                .collect()
        })
    }

    /// Arms chrome-trace capture when `--trace FILE` was given: enables
    /// telemetry recording and returns the output path. Harness mains
    /// call this before their sweep and [`write_trace`] on exit.
    pub fn trace_path(&self) -> Option<String> {
        let path = self.get("trace").map(str::to_string);
        if path.is_some() {
            spmv_telemetry::set_enabled(true);
        }
        path
    }

    /// Builds the shared experiment options and prints help if requested.
    pub fn experiment_opts(&self, bin: &str, extra_help: &str) -> crate::sweep::ExpOpts {
        if self.flag("help") {
            println!(
                "usage: {bin} [--scale F] [--seed N] [--min-time MS] [--batches N] \
                 [--matrices a,b,c] [--trace FILE]{extra_help}\n\
                 defaults: --scale 0.25 --seed 42 --min-time 2 --batches 3"
            );
            std::process::exit(0);
        }
        crate::sweep::ExpOpts {
            scale: self.get_f64("scale", 0.25),
            seed: self.get_u64("seed", 42),
            min_time: self.get_f64("min-time", 2.0) * 1e-3,
            batches: self.get_usize("batches", 3),
            matrices: self.get_usize_list("matrices"),
            calib_bytes: self.get("calib-mib").map(|v| {
                let mib: f64 = v.parse().expect("--calib-mib expects a number");
                (mib * 1024.0 * 1024.0) as usize
            }),
        }
    }
}

/// Writes the telemetry recorded since [`Args::trace_path`] armed
/// capture to `path` as chrome-trace JSON (see `docs/OBSERVABILITY.md`).
/// Failures are reported on stderr, not fatal — a missing trace must
/// never invalidate the measurements it annotated.
pub fn write_trace(path: &str) {
    match spmv_telemetry::chrome::write_chrome_trace(path) {
        Ok(()) => eprintln!("chrome trace written to {path}"),
        Err(e) => eprintln!("failed to write chrome trace {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn options_and_flags() {
        let a = parse("--scale 2.5 --verbose --seed 7");
        assert_eq!(a.get_f64("scale", 1.0), 2.5);
        assert_eq!(a.get_u64("seed", 0), 7);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.get_f64("scale", 0.25), 0.25);
        assert_eq!(a.get_usize("batches", 3), 3);
    }

    #[test]
    fn lists() {
        let a = parse("--matrices 3,7, 19");
        // note: the space split makes "19" a flagless token, ignored;
        // canonical usage has no spaces inside the list.
        assert_eq!(a.get_usize_list("matrices"), Some(vec![3, 7]));
    }

    #[test]
    fn flag_followed_by_option() {
        let a = parse("--quick --scale 0.5");
        assert!(a.flag("quick"));
        assert_eq!(a.get_f64("scale", 1.0), 0.5);
    }
}
