//! Index-compression report: regenerates `results/compression.txt` —
//! measured index-byte reduction and measured-vs-predicted times for
//! CSR-Δ and the narrow-index blocked formats, per suite matrix.

use spmv_bench::experiments::compression;
use spmv_bench::Args;

fn main() {
    let args = Args::from_env();
    let trace = args.trace_path();
    let opts = args.experiment_opts("compression", "");
    eprintln!("calibrating and sweeping single precision ...");
    let sp = compression::run::<f32>(&opts);
    eprintln!("calibrating and sweeping double precision ...");
    let dp = compression::run::<f64>(&opts);
    println!("{}", compression::render(&sp));
    println!("{}", compression::render(&dp));
    println!(
        "machine: {:.2} GiB/s triad, L1 {} KiB, LLC {} MiB",
        dp.machine.bandwidth / (1u64 << 30) as f64,
        dp.machine.l1_bytes / 1024,
        dp.machine.llc_bytes / (1024 * 1024)
    );
    if let Some(path) = trace {
        spmv_bench::write_trace(&path);
    }
}
