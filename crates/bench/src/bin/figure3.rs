//! Regenerates Figure 3: predicted execution time normalized over real
//! execution time per matrix (average over all block/method
//! combinations), for MEM, MEMCOMP, and OVERLAP, at both precisions.

use spmv_bench::experiments::modeleval;
use spmv_bench::Args;

fn main() {
    let opts = Args::from_env().experiment_opts("figure3", "");
    let sp = modeleval::run::<f32>(&opts);
    println!("{}", modeleval::render_figure3(&sp));
    let dp = modeleval::run::<f64>(&opts);
    println!("{}", modeleval::render_figure3(&dp));
    println!(
        "paper shape check (Figure 3): MEM under-predicts (performance upper bound),\n\
         MEMCOMP over-predicts (lower bound), OVERLAP tracks the real time most closely;\n\
         irregular-access matrices (#12, #14, #15, #28) are under-predicted by MEM/OVERLAP."
    );
}
