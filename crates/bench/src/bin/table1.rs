//! Regenerates Table I: the matrix suite with rows, nonzeros, and CSR
//! working sets.

use spmv_bench::experiments::table1;
use spmv_bench::Args;

fn main() {
    let opts = Args::from_env().experiment_opts("table1", "");
    let rows = table1::run(&opts);
    println!("{}", table1::render(&rows));
    println!(
        "paper shape check: every working set should exceed the cache; \
         rerun with --scale 8 (or more) on machines with large caches."
    );
}
