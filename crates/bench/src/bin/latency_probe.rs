//! The §V-B irregularity probe over the suite: for each matrix, the
//! slowdown caused by irregular input-vector accesses (original vs
//! zeroed `col_ind` CSR), next to the static irregularity fraction.
//!
//! The paper used this to explain why MEM/OVERLAP under-predict matrices
//! #12, #14, #15, and #28: their probe speedups were 2x-4x, marking them
//! latency-bound.

use spmv_bench::diagnostics::{irregularity_fraction, latency_probe};
use spmv_bench::report::{f2, pct, Table};
use spmv_bench::Args;
use spmv_gen::suite;

fn main() {
    let opts = Args::from_env().experiment_opts("latency_probe", "");
    let mut t = Table::new(vec![
        "Matrix",
        "t_orig (ms)",
        "t_zeroed (ms)",
        "slowdown",
        "irregular",
        "verdict",
    ])
    .title("SV-B probe: cost of irregular input-vector accesses (CSR, dp)");
    for entry in suite(opts.scale) {
        if !opts.selects(entry.id) {
            continue;
        }
        let csr = entry.build(opts.seed);
        let r = latency_probe(&csr, &opts);
        t.add_row(vec![
            format!("{:02}.{}", entry.id, entry.name),
            f2(r.t_original * 1e3),
            f2(r.t_zeroed * 1e3),
            f2(r.slowdown()),
            pct(irregularity_fraction(&csr, 16)),
            if !r.is_reliable() {
                "(too fast to judge)".to_string()
            } else if r.is_latency_bound() {
                "latency-bound".to_string()
            } else {
                "bandwidth-bound".to_string()
            },
        ]);
    }
    println!("{t}");
    println!(
        "paper shape check: the graph/LP/mesh entries (#12, #14, #15, #28 analogues) \
         should show the largest slowdowns — the matrices Figure 3's models miss."
    );
}
