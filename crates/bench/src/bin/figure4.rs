//! Regenerates Figure 4: the real execution time of each model's
//! selected (method, block, implementation) normalized over the best
//! measured configuration, per matrix, at both precisions.

use spmv_bench::experiments::modeleval;
use spmv_bench::Args;

fn main() {
    let opts = Args::from_env().experiment_opts("figure4", "");
    let sp = modeleval::run::<f32>(&opts);
    println!("{}", modeleval::render_figure4(&sp));
    let dp = modeleval::run::<f64>(&opts);
    println!("{}", modeleval::render_figure4(&dp));
    println!(
        "paper shape check (Figure 4): OVERLAP's selections sit within a few percent \
         of the optimum on nearly every matrix; MEM misses where compute matters."
    );
}
