//! Telemetry-overhead probe: pooled SpMV with recording disabled and
//! enabled, interleaved in one process so clock drift and thermal state
//! hit both sides equally. Backs the overhead numbers quoted in
//! `docs/OBSERVABILITY.md` and `results/telemetry.txt`.
//!
//! The disabled side answers "what does shipping the instrumentation
//! cost when nobody is tracing" (one relaxed atomic load per epoch per
//! thread); the enabled side bounds the cost of actually recording
//! `pool.epoch` + per-strip spans on every call.

use spmv_bench::Args;
use spmv_core::{Csr, SpMv};
use spmv_gen::GenSpec;
use spmv_model::timing::measure_spmv;
use spmv_parallel::{csr_unit_weights, PinPolicy, SpmvPool};

fn main() {
    let args = Args::from_env();
    if args.flag("help") {
        println!(
            "usage: teleoverhead [--n N] [--threads T] [--min-time MS] [--rounds R] \
             [--trace FILE]\n\
             defaults: --n 20000 --threads 2 --min-time 20 --rounds 5"
        );
        return;
    }
    let trace = args.trace_path();
    let n = args.get_usize("n", 20_000);
    let threads = args.get_usize("threads", 2);
    let min_time = args.get_f64("min-time", 20.0) * 1e-3;
    let rounds = args.get_usize("rounds", 5).max(1);

    let csr: Csr<f64> = GenSpec::Random {
        n,
        m: n,
        nnz_per_row: 12,
    }
    .build(42);
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let pool = SpmvPool::from_csr(
        &csr,
        threads,
        &csr_unit_weights(&csr),
        1,
        Csr::clone,
        PinPolicy::None,
    );
    let _ = pool.spmv(&x); // warm-up: spawn costs, page faults

    // Interleaved best-of: alternate off/on rounds so neither mode gets
    // the quiet half of the run.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..rounds {
        spmv_telemetry::set_enabled(false);
        best_off = best_off.min(measure_spmv(&pool, &x, min_time, 1));
        spmv_telemetry::set_enabled(true);
        best_on = best_on.min(measure_spmv(&pool, &x, min_time, 1));
    }
    spmv_telemetry::set_enabled(false);
    let serial = measure_spmv(&csr, &x, min_time, 3);

    println!(
        "teleoverhead: n={n} nnz={} threads={threads} rounds={rounds} window={:.0}ms",
        csr.nnz(),
        min_time * 1e3
    );
    println!("  serial CSR          {:>10.1} us/call", serial * 1e6);
    println!("  pool, recording off {:>10.1} us/call", best_off * 1e6);
    println!(
        "  pool, recording on  {:>10.1} us/call  ({:+.2}% vs off)",
        best_on * 1e6,
        (best_on / best_off - 1.0) * 100.0
    );
    let snap = spmv_telemetry::snapshot();
    println!();
    print!("{}", spmv_telemetry::summary::render(&snap));
    if let Some(path) = trace {
        spmv_bench::write_trace(&path);
    }
}
