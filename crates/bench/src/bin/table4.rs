//! Regenerates Table IV: number of optimal selections per model and the
//! average distance of each model's selection from the best measured
//! performance, for single and double precision.

use spmv_bench::experiments::modeleval;
use spmv_bench::Args;

fn main() {
    let opts = Args::from_env().experiment_opts("table4", "");
    let sp = modeleval::run::<f32>(&opts);
    let dp = modeleval::run::<f64>(&opts);
    println!("{}", modeleval::render_table4(&[&sp, &dp]));
    println!(
        "paper shape check (Table IV): OVERLAP scores the most correct selections \
         and the smallest distance from best (paper: ~2%); MEM and MEMCOMP trail \
         at roughly 4-9%."
    );
}
