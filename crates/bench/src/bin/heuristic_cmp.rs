//! Compares the Vuduc/Buttari BCSR fill heuristic (the related-work
//! baseline of §I that the paper's models generalize) against the
//! paper's three models, restricted to the arena the heuristic can play
//! in: BCSR shapes only.
//!
//! For each suite matrix: the heuristic's pick, each model's pick (among
//! BCSR configurations), and the measured time of every pick normalized
//! by the best measured BCSR configuration.

use spmv_bench::experiments::modeleval::calibrate;
use spmv_bench::report::{f2, Table};
use spmv_bench::Args;
use spmv_core::MatrixShape;
use spmv_gen::{random_vector, suite, Geometry};
use spmv_model::timing::measure_spmv;
use spmv_model::{
    profile_dense, rank, select_bcsr_shape, BlockConfig, Config, Model,
};
use spmv_kernels::KernelImpl;

fn main() {
    let opts = Args::from_env().experiment_opts("heuristic_cmp", "");
    eprintln!("calibrating models and dense profile ...");
    let (machine, profile) = calibrate::<f64>(16 << 20, &opts);
    let dense = profile_dense::<f64>(&machine, None, opts.min_time);

    // The heuristic's arena: BCSR configurations only.
    let bcsr_configs: Vec<Config> = Config::enumerate(true)
        .into_iter()
        .filter(|c| matches!(c.block, BlockConfig::Bcsr(_)))
        .collect();

    let mut t = Table::new(vec![
        "Matrix",
        "heuristic pick",
        "heur/best",
        "MEM/best",
        "MEMCOMP/best",
        "OVERLAP/best",
    ])
    .title("Vuduc/Buttari fill heuristic vs the paper's models (BCSR arena, dp)");
    let mut sums = [0.0f64; 4];
    let mut count = 0usize;
    for entry in suite(opts.scale) {
        if !opts.selects(entry.id) || entry.geometry == Geometry::Special {
            continue;
        }
        let csr = entry.build(opts.seed);
        let x: Vec<f64> = random_vector(csr.n_cols(), opts.seed);
        // Measure the whole BCSR arena once.
        let reals: Vec<(Config, f64)> = bcsr_configs
            .iter()
            .map(|&c| {
                let built = c.build(&csr);
                (c, measure_spmv(&built, &x, opts.min_time, opts.batches))
            })
            .collect();
        let best = reals
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let real_of = |config: Config| -> f64 {
            reals
                .iter()
                .find(|(c, _)| *c == config)
                .map(|&(_, t)| t)
                .expect("config in arena")
        };

        // The heuristic's pick.
        let (shape, imp, _) = select_bcsr_shape(&csr, &dense, true);
        let heur_cfg = Config {
            block: BlockConfig::Bcsr(shape),
            imp,
        };
        let heur_norm = real_of(heur_cfg) / best;

        // Each model's pick within the same arena.
        let mut model_norms = [0.0f64; 3];
        for (mi, model) in Model::ALL.into_iter().enumerate() {
            let arena: Vec<Config> = if model == Model::Mem {
                bcsr_configs
                    .iter()
                    .copied()
                    .filter(|c| c.imp == KernelImpl::Scalar)
                    .collect()
            } else {
                bcsr_configs.clone()
            };
            let pick = rank(model, &csr, &machine, &profile, &arena)[0].config;
            model_norms[mi] = real_of(pick) / best;
        }

        sums[0] += heur_norm;
        for (s, v) in sums[1..].iter_mut().zip(model_norms) {
            *s += v;
        }
        count += 1;
        t.add_row(vec![
            format!("{:02}.{}", entry.id, entry.name),
            format!("{shape}{}", imp.suffix()),
            f2(heur_norm),
            f2(model_norms[0]),
            f2(model_norms[1]),
            f2(model_norms[2]),
        ]);
    }
    let n = count.max(1) as f64;
    t.add_row(vec![
        "Average".to_string(),
        "".to_string(),
        f2(sums[0] / n),
        f2(sums[1] / n),
        f2(sums[2] / n),
        f2(sums[3] / n),
    ]);
    println!("{t}");
    println!(
        "shape check: the heuristic is competitive inside the BCSR arena (its home \
         turf) but, unlike the models, it cannot rank CSR/BCSD/decomposed \
         alternatives at all — the generality gap the paper cites (SIV)."
    );
}
