//! Combined model evaluation: regenerates Figure 3, Figure 4, and
//! Table IV from a single sweep (the three dedicated binaries each rerun
//! the same measurements; use this one to get all three artifacts for
//! the price of one).

use spmv_bench::experiments::modeleval;
use spmv_bench::Args;

fn main() {
    let args = Args::from_env();
    let trace = args.trace_path();
    let opts = args.experiment_opts("modeleval", "");
    eprintln!("calibrating and sweeping single precision ...");
    let sp = modeleval::run::<f32>(&opts);
    eprintln!("calibrating and sweeping double precision ...");
    let dp = modeleval::run::<f64>(&opts);
    println!("{}", modeleval::render_figure3(&sp));
    println!("{}", modeleval::render_figure3(&dp));
    println!("{}", modeleval::render_figure4(&sp));
    println!("{}", modeleval::render_figure4(&dp));
    println!("{}", modeleval::render_table4(&[&sp, &dp]));
    println!("{}", modeleval::render_compression(&sp));
    println!("{}", modeleval::render_compression(&dp));
    println!("{}", modeleval::render_residuals());
    println!(
        "machine: {:.2} GiB/s triad, L1 {} KiB, LLC {} MiB",
        dp.machine.bandwidth / (1u64 << 30) as f64,
        dp.machine.l1_bytes / 1024,
        dp.machine.llc_bytes / (1024 * 1024)
    );
    if let Some(path) = trace {
        spmv_bench::write_trace(&path);
    }
}
