//! Regenerates Table II: the number of matrices each storage format wins
//! in the four single-threaded configurations (dp, dp-simd, sp, sp-simd).

use spmv_bench::experiments::wins;
use spmv_bench::Args;

fn main() {
    let opts = Args::from_env().experiment_opts("table2", "");
    eprintln!("sweeping {} configurations per matrix and precision ...", 106);
    let result = wins::run(&opts);
    println!("{}", wins::render_table2(&result));
    println!(
        "paper shape check (Table II): BCSR and CSR should hold the most wins,\n\
         BCSR gaining further in single precision; 1D-VBL wins at most one matrix."
    );
}
