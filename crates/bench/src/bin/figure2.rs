//! Regenerates Figure 2: the distribution of wins across storage formats
//! for 1, 2, and 4 cores, single and double precision.

use spmv_bench::experiments::threads;
use spmv_bench::Args;

fn main() {
    let args = Args::from_env();
    let trace = args.trace_path();
    let opts = args.experiment_opts("figure2", "");
    let threads_avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = threads::run(&opts);
    println!("{}", threads::render(&result));
    println!(
        "host parallelism: {threads_avail} hardware thread(s); with fewer than 4 cores \
         the 2c/4c series oversubscribe and their win distribution degenerates \
         toward the 1c one (recorded in EXPERIMENTS.md)."
    );
    println!(
        "paper shape check (Figure 2): the picture stays similar across core counts — \
         BCSR keeps the majority of matrices, with CSR and BCSD following."
    );
    if let Some(path) = trace {
        spmv_bench::write_trace(&path);
    }
}
