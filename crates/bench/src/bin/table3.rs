//! Regenerates Table III: per-matrix min/avg/max speedups over CSR for
//! every blocked format (double precision, scalar kernels).

use spmv_bench::experiments::wins;
use spmv_bench::Args;

fn main() {
    let opts = Args::from_env().experiment_opts("table3", "");
    let result = wins::run(&opts);
    println!("{}", wins::render_table3(&result));
    println!(
        "paper shape check (Table III): BCSR has the widest min-max spread \
         (bad shapes hurt badly), the decomposed formats the narrowest; \
         the dense matrix speeds up under every format."
    );
}
