//! Measurement sweeps over the configuration space.
//!
//! The experiments of §V measure the real execution time of every
//! (format, block, implementation) candidate on every suite matrix. This
//! module owns that machinery: the extended configuration type (the
//! models exclude 1D-VBL, the measured evaluation includes it), the
//! per-matrix sweep, and the derived quantities the tables report
//! (winners per configuration column, speedups over CSR).

use spmv_core::{Csr, MatrixShape, Precision};
use spmv_formats::{FormatKind, Vbl};
use spmv_gen::random_vector;
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::KernelImpl;
use spmv_model::timing::measure_spmv;
use spmv_model::Config;

/// Shared experiment options (see `--help` of any harness binary).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpOpts {
    /// Suite size multiplier.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Timing window per measurement, seconds.
    pub min_time: f64,
    /// Best-of batches per measurement.
    pub batches: usize,
    /// Restrict to these suite ids (1-based), if set.
    pub matrices: Option<Vec<usize>>,
    /// Override the model-calibration footprint in bytes (bandwidth
    /// triad + `nof` profiling matrix). `None` sizes it from the
    /// evaluated matrices, floored at 8 MiB.
    pub calib_bytes: Option<usize>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            scale: 0.25,
            seed: 42,
            min_time: 2e-3,
            batches: 3,
            matrices: None,
            calib_bytes: None,
        }
    }
}

impl ExpOpts {
    /// Whether suite id `id` is selected.
    pub fn selects(&self, id: usize) -> bool {
        self.matrices.as_ref().is_none_or(|m| m.contains(&id))
    }
}

/// A measured configuration: the model space plus 1D-VBL.
///
/// The paper's measured evaluation covers all six formats, but its models
/// deliberately exclude variable-size blocking (§IV); this enum is the
/// measured superset of [`Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnyConfig {
    /// A model-space configuration (CSR / BCSR / BCSR-DEC / BCSD /
    /// BCSD-DEC).
    Fixed(Config),
    /// 1D-VBL (the paper implements it with scalar kernels only).
    Vbl,
}

impl AnyConfig {
    /// The format family.
    pub fn kind(self) -> FormatKind {
        match self {
            AnyConfig::Fixed(c) => c.block.kind(),
            AnyConfig::Vbl => FormatKind::Vbl,
        }
    }

    /// The kernel implementation this configuration runs.
    pub fn imp(self) -> KernelImpl {
        match self {
            AnyConfig::Fixed(c) => c.imp,
            AnyConfig::Vbl => KernelImpl::Scalar,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> String {
        match self {
            AnyConfig::Fixed(c) => c.to_string(),
            AnyConfig::Vbl => "1D-VBL".to_string(),
        }
    }

    /// The full measured configuration space: every model-space
    /// configuration (scalar + SIMD) plus 1D-VBL.
    pub fn enumerate() -> Vec<AnyConfig> {
        let mut out: Vec<AnyConfig> = Config::enumerate(true)
            .into_iter()
            .map(AnyConfig::Fixed)
            .collect();
        out.push(AnyConfig::Vbl);
        out
    }

    /// Measures seconds per SpMV of this configuration on `csr`.
    pub fn measure<T: SimdScalar>(self, csr: &Csr<T>, opts: &ExpOpts) -> f64 {
        let x: Vec<T> = random_vector(csr.n_cols(), opts.seed);
        match self {
            AnyConfig::Fixed(c) => {
                let built = c.build(csr);
                measure_spmv(&built, &x, opts.min_time, opts.batches)
            }
            AnyConfig::Vbl => {
                let vbl = Vbl::from_csr(csr, KernelImpl::Scalar);
                measure_spmv(&vbl, &x, opts.min_time, opts.batches)
            }
        }
    }
}

/// All measured times for one matrix at one precision.
#[derive(Debug, Clone)]
pub struct MatrixSweep {
    /// `(configuration, seconds per SpMV)` for every measured config.
    pub entries: Vec<(AnyConfig, f64)>,
}

impl MatrixSweep {
    /// Measures the full configuration space on `csr`.
    pub fn run<T: SimdScalar>(csr: &Csr<T>, opts: &ExpOpts) -> Self {
        let entries = AnyConfig::enumerate()
            .into_iter()
            .map(|c| (c, c.measure(csr, opts)))
            .collect();
        MatrixSweep { entries }
    }

    /// CSR baseline time.
    pub fn csr_time(&self) -> f64 {
        self.entries
            .iter()
            .find(|(c, _)| *c == AnyConfig::Fixed(Config::CSR))
            .map(|&(_, t)| t)
            .expect("CSR is always measured")
    }

    /// The overall fastest configuration among `candidates`-filtered
    /// entries.
    pub fn best_where(&self, mut keep: impl FnMut(AnyConfig) -> bool) -> (AnyConfig, f64) {
        self.entries
            .iter()
            .filter(|(c, _)| keep(*c))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(c, t)| (c, t))
            .expect("filter selected no configurations")
    }

    /// The winner of one of Table II's configuration columns.
    ///
    /// A column allows CSR (always with its scalar kernel), the four
    /// fixed-size blocked formats with the column's implementation, and —
    /// in the non-SIMD columns only, as in the paper — 1D-VBL.
    pub fn column_winner(&self, simd: bool) -> (AnyConfig, f64) {
        self.best_where(|c| match c {
            AnyConfig::Fixed(cfg) if cfg.block == spmv_model::BlockConfig::Csr => true,
            AnyConfig::Fixed(cfg) => (cfg.imp == KernelImpl::Simd) == simd,
            AnyConfig::Vbl => !simd,
        })
    }

    /// Per-format best/worst/average speedup over CSR, restricted to the
    /// given implementation (Table III uses scalar double precision).
    pub fn speedups_over_csr(&self, kind: FormatKind, imp: KernelImpl) -> Option<SpeedupStats> {
        let csr = self.csr_time();
        let speedups: Vec<f64> = self
            .entries
            .iter()
            .filter(|(c, _)| c.kind() == kind && c.imp() == imp)
            .map(|(_, t)| csr / t)
            .collect();
        if speedups.is_empty() {
            return None;
        }
        Some(SpeedupStats {
            min: speedups.iter().copied().fold(f64::INFINITY, f64::min),
            avg: speedups.iter().sum::<f64>() / speedups.len() as f64,
            max: speedups.iter().copied().fold(0.0, f64::max),
        })
    }
}

/// Min / average / max speedup over CSR for one format on one matrix
/// (a Table III cell triple).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupStats {
    /// Worst block choice.
    pub min: f64,
    /// Average over block choices.
    pub avg: f64,
    /// Best block choice.
    pub max: f64,
}

/// Builds the suite matrix `entry` at both precisions from one `f64`
/// build.
pub fn build_both(
    entry: &spmv_gen::SuiteMatrix,
    seed: u64,
) -> (Csr<f64>, Csr<f32>) {
    let m64 = entry.build(seed);
    let m32 = m64.cast::<f32>();
    (m64, m32)
}

/// The paper's four single-threaded configuration columns (Table II
/// order): dp, dp-simd, sp, sp-simd.
pub const COLUMNS: [(Precision, bool); 4] = [
    (Precision::Double, false),
    (Precision::Double, true),
    (Precision::Single, false),
    (Precision::Single, true),
];

/// Label of a configuration column (`"dp-simd"` etc.).
pub fn column_label(precision: Precision, simd: bool) -> String {
    format!(
        "{}{}",
        precision.label(),
        if simd { "-simd" } else { "" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_gen::GenSpec;

    fn quick_opts() -> ExpOpts {
        ExpOpts {
            scale: 0.02,
            seed: 1,
            min_time: 5e-5,
            batches: 1,
            matrices: None,
            calib_bytes: Some(1 << 16),
        }
    }

    #[test]
    fn enumerate_has_model_space_plus_vbl() {
        let all = AnyConfig::enumerate();
        assert_eq!(all.len(), Config::enumerate(true).len() + 1);
        assert!(all.contains(&AnyConfig::Vbl));
    }

    #[test]
    fn sweep_measures_everything_and_finds_csr() {
        let csr = GenSpec::Stencil2d { nx: 12, ny: 10 }.build(3);
        let sweep = MatrixSweep::run(&csr, &quick_opts());
        assert_eq!(sweep.entries.len(), AnyConfig::enumerate().len());
        assert!(sweep.csr_time() > 0.0);
        assert!(sweep.entries.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn column_winner_respects_simd_rules() {
        let csr = GenSpec::FemBlocks {
            nodes: 24,
            dof: 3,
            neighbors: 4,
        }
        .build(5);
        let sweep = MatrixSweep::run(&csr, &quick_opts());
        let (w_scalar, _) = sweep.column_winner(false);
        let (w_simd, _) = sweep.column_winner(true);
        // Non-CSR winners in the simd column must be simd configs.
        if let AnyConfig::Fixed(c) = w_simd {
            if c.block != spmv_model::BlockConfig::Csr {
                assert_eq!(c.imp, KernelImpl::Simd);
            }
        }
        // VBL can never win the simd column.
        assert_ne!(w_simd, AnyConfig::Vbl);
        let _ = w_scalar;
    }

    #[test]
    fn speedups_cover_expected_formats() {
        let csr = GenSpec::Banded {
            n: 120,
            bandwidth: 6,
            fill: 0.7,
        }
        .build(2);
        let sweep = MatrixSweep::run(&csr, &quick_opts());
        for kind in FormatKind::EVALUATED {
            if kind == FormatKind::Csr {
                continue;
            }
            let st = sweep
                .speedups_over_csr(kind, KernelImpl::Scalar)
                .unwrap_or_else(|| panic!("{kind} missing"));
            assert!(st.min <= st.avg && st.avg <= st.max, "{kind}");
            assert!(st.min > 0.0);
        }
    }

    #[test]
    fn build_both_casts_structure() {
        let entries = spmv_gen::suite(0.02);
        let (m64, m32) = build_both(&entries[4], 7);
        assert_eq!(m64.nnz(), m32.nnz());
        assert_eq!(MatrixShape::n_rows(&m64), MatrixShape::n_rows(&m32));
    }

    #[test]
    fn column_labels() {
        assert_eq!(column_label(Precision::Double, false), "dp");
        assert_eq!(column_label(Precision::Single, true), "sp-simd");
    }
}
