//! Fixed-width table rendering for the experiment harness.
//!
//! Every harness binary prints paper-shaped tables through this module,
//! so the output of `table2`, `figure3`, … can be compared side-by-side
//! with the paper's Tables II–IV and Figures 2–4.

use core::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (names, labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`Table::aligns`]).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if let Some(a) = aligns.first_mut() {
            *a = Align::Left;
        }
        Table {
            aligns,
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a caption printed above the table.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = Some(t.into());
        self
    }

    /// Overrides the per-column alignment.
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns;
        self
    }

    /// Appends a row; must match the header arity.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..ncols {
                match self.aligns[i] {
                    Align::Left => write!(f, " {:<w$} |", cells[i], w = widths[i])?,
                    Align::Right => write!(f, " {:>w$} |", cells[i], w = widths[i])?,
                }
            }
            writeln!(f)
        };
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write_row(f, &self.headers)?;
        rule(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        rule(f)
    }
}

/// Formats a float with 2 decimals (the paper's table precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats a byte count as MiB with 2 decimals, as in Table I.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "val"]).title("demo");
        t.add_row(vec!["a", "1.00"]);
        t.add_row(vec!["long-name", "12.34"]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("| name      |   val |"));
        assert!(s.contains("| long-name | 12.34 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(pct(0.0215), "2.1%");
        assert_eq!(mib(32 * 1024 * 1024), "32.00");
    }

    #[test]
    fn row_count() {
        let mut t = Table::new(vec!["x"]);
        assert_eq!(t.n_rows(), 0);
        t.add_row(vec!["1"]);
        assert_eq!(t.n_rows(), 1);
    }
}
