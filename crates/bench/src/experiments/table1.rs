//! Table I: the matrix suite (rows, nonzeros, CSR working set).

use crate::report::{mib, Table};
use crate::sweep::ExpOpts;
use spmv_core::{MatrixShape, SpMv};
use spmv_gen::{suite, Geometry};

/// One suite row as reported by Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRow {
    /// Paper id.
    pub id: usize,
    /// Paper matrix name.
    pub name: &'static str,
    /// Application domain.
    pub domain: &'static str,
    /// Geometry class.
    pub geometry: Geometry,
    /// Rows of the generated stand-in.
    pub n_rows: usize,
    /// Nonzeros of the generated stand-in.
    pub nnz: usize,
    /// CSR working set in bytes (double precision), as Table I's `ws`.
    pub ws_bytes: usize,
}

/// Builds every selected suite matrix and records its Table I row.
pub fn run(opts: &ExpOpts) -> Vec<SuiteRow> {
    suite(opts.scale)
        .iter()
        .filter(|e| opts.selects(e.id))
        .map(|e| {
            let csr = e.build(opts.seed);
            SuiteRow {
                id: e.id,
                name: e.name,
                domain: e.domain,
                geometry: e.geometry,
                n_rows: csr.n_rows(),
                nnz: csr.nnz(),
                ws_bytes: csr.working_set_bytes(),
            }
        })
        .collect()
}

/// Renders the rows in Table I's layout.
pub fn render(rows: &[SuiteRow]) -> Table {
    let mut t = Table::new(vec!["Matrix", "Domain", "# rows", "# nonzeros", "ws (MiB)"])
        .title("Table I: matrix suite (synthetic stand-ins; ws = CSR working set, dp)");
    for r in rows {
        t.add_row(vec![
            format!("{:02}.{}", r.id, r.name),
            r.domain.to_string(),
            r.n_rows.to_string(),
            r.nnz.to_string(),
            mib(r.ws_bytes),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_30_at_tiny_scale() {
        let opts = ExpOpts {
            scale: 0.02,
            ..ExpOpts::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 30);
        assert!(rows.iter().all(|r| r.nnz > 0));
        let table = render(&rows);
        assert_eq!(table.n_rows(), 30);
    }

    #[test]
    fn matrix_filter_applies() {
        let opts = ExpOpts {
            scale: 0.02,
            matrices: Some(vec![1, 23]),
            ..ExpOpts::default()
        };
        let rows = run(&opts);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, 1);
        assert_eq!(rows[1].id, 23);
    }
}
