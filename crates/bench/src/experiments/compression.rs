//! Index-compression experiment (`results/compression.txt`): measured
//! and predicted effect of the compressed-index storage extension.
//!
//! For every suite matrix, three baseline→compressed pairs are compared:
//!
//! * CSR → CSR-Δ (delta-encoded, run-classified column stream);
//! * the OVERLAP-ranked best BCSR shape → its narrow-index twin;
//! * the OVERLAP-ranked best BCSD size → its narrow-index twin.
//!
//! Each side reports its index bytes per nonzero, its measured time, and
//! its OVERLAP-model prediction, so the report shows both the realized
//! index-byte reduction and how faithfully the byte-traffic models track
//! the measured gain.

use crate::experiments::modeleval::calibrate;
use crate::report::{f2, pct, Table};
use crate::sweep::ExpOpts;
use spmv_core::{Csr, Precision, SpMv};
use spmv_gen::{random_vector, suite, Geometry};
use spmv_kernels::simd::SimdScalar;
use spmv_model::timing::measure_spmv;
use spmv_model::{rank, BlockConfig, Config, KernelProfile, MachineProfile, Model};

/// One baseline→compressed comparison.
#[derive(Debug, Clone)]
pub struct PairEval {
    /// Pair label (e.g. `CSR -> CSR-DELTA`).
    pub pair: &'static str,
    /// Baseline configuration label.
    pub base: String,
    /// Compressed configuration label.
    pub comp: String,
    /// Baseline index bytes per nonzero.
    pub base_idx: f64,
    /// Compressed index bytes per nonzero.
    pub comp_idx: f64,
    /// Baseline measured time, seconds.
    pub base_real: f64,
    /// Compressed measured time, seconds.
    pub comp_real: f64,
    /// Baseline OVERLAP prediction, seconds.
    pub base_pred: f64,
    /// Compressed OVERLAP prediction, seconds.
    pub comp_pred: f64,
}

impl PairEval {
    /// Fractional index-byte reduction (`1 - comp/base`).
    pub fn idx_reduction(&self) -> f64 {
        1.0 - self.comp_idx / self.base_idx
    }

    /// Measured speedup of the compressed side.
    pub fn measured_speedup(&self) -> f64 {
        self.base_real / self.comp_real
    }

    /// Predicted speedup of the compressed side.
    pub fn predicted_speedup(&self) -> f64 {
        self.base_pred / self.comp_pred
    }
}

/// Per-matrix comparison set.
#[derive(Debug, Clone)]
pub struct MatrixCompression {
    /// Paper id.
    pub id: usize,
    /// Matrix name.
    pub name: &'static str,
    /// The three baseline→compressed pairs.
    pub pairs: Vec<PairEval>,
}

/// The full compression evaluation for one precision.
#[derive(Debug, Clone)]
pub struct CompressionResult {
    /// Evaluated precision.
    pub precision: Precision,
    /// The calibrated machine profile used for predictions.
    pub machine: MachineProfile,
    /// One record per matrix.
    pub per_matrix: Vec<MatrixCompression>,
}

fn index_bytes_per_nnz<T: SimdScalar>(config: Config, csr: &Csr<T>) -> f64 {
    let built = config.build(csr);
    (built.matrix_bytes() - built.nnz_stored() * T::BYTES) as f64 / csr.nnz().max(1) as f64
}

fn eval_pair<T: SimdScalar>(
    pair: &'static str,
    (base, comp): (Config, Config),
    csr: &Csr<T>,
    x: &[T],
    machine: &MachineProfile,
    profile: &KernelProfile,
    opts: &ExpOpts,
) -> PairEval {
    let time = |c: Config| measure_spmv(&c.build(csr), x, opts.min_time, opts.batches);
    let pred = |c: Config| Model::Overlap.predict(&c.substats(csr), machine, profile);
    PairEval {
        pair,
        base: base.to_string(),
        comp: comp.to_string(),
        base_idx: index_bytes_per_nnz(base, csr),
        comp_idx: index_bytes_per_nnz(comp, csr),
        base_real: time(base),
        comp_real: time(comp),
        base_pred: pred(base),
        comp_pred: pred(comp),
    }
}

/// Runs the compression evaluation over the selected suite.
pub fn run<T: SimdScalar>(opts: &ExpOpts) -> CompressionResult {
    let matrices: Vec<(usize, &'static str, Csr<T>)> = suite(opts.scale)
        .iter()
        .filter(|e| opts.selects(e.id) && e.geometry != Geometry::Special)
        .map(|e| (e.id, e.name, e.build(opts.seed).cast::<T>()))
        .collect();

    let mut ws: Vec<usize> = matrices
        .iter()
        .map(|(_, _, m)| m.working_set_bytes())
        .collect();
    ws.sort_unstable();
    let ws_hint = ws.get(ws.len() / 2).copied().unwrap_or(8 << 20);
    let (machine, profile) = calibrate::<T>(ws_hint, opts);

    let base_space = Config::enumerate(true);
    let mut per_matrix = Vec::with_capacity(matrices.len());
    for (id, name, csr) in &matrices {
        let x: Vec<T> = random_vector(spmv_core::MatrixShape::n_cols(csr), opts.seed);
        // Pick the blocked baselines by OVERLAP ranking over the paper's
        // base space, then pair each with its narrow-index twin at the
        // same block parameter and kernel implementation.
        let ranked = rank(Model::Overlap, csr, &machine, &profile, &base_space);
        let best_of = |pick: fn(BlockConfig) -> Option<BlockConfig>| {
            ranked.iter().find_map(|cand| {
                pick(cand.config.block).map(|narrow| {
                    (
                        cand.config,
                        Config {
                            block: narrow,
                            imp: cand.config.imp,
                        },
                    )
                })
            })
        };
        let bcsr_pair = best_of(|b| match b {
            BlockConfig::Bcsr(shape) => Some(BlockConfig::BcsrNarrow(shape)),
            _ => None,
        })
        .expect("base space contains BCSR");
        let bcsd_pair = best_of(|b| match b {
            BlockConfig::Bcsd(size) => Some(BlockConfig::BcsdNarrow(size)),
            _ => None,
        })
        .expect("base space contains BCSD");

        let delta = Config {
            block: BlockConfig::CsrDelta,
            imp: spmv_kernels::KernelImpl::Scalar,
        };
        let pairs = vec![
            eval_pair(
                "CSR -> CSR-DELTA",
                (Config::CSR, delta),
                csr,
                &x,
                &machine,
                &profile,
                opts,
            ),
            eval_pair("BCSR -> BCSR16", bcsr_pair, csr, &x, &machine, &profile, opts),
            eval_pair("BCSD -> BCSD16", bcsd_pair, csr, &x, &machine, &profile, opts),
        ];
        per_matrix.push(MatrixCompression {
            id: *id,
            name,
            pairs,
        });
    }

    CompressionResult {
        precision: T::PRECISION,
        machine,
        per_matrix,
    }
}

/// Renders the per-matrix comparison table with suite-wide means in the
/// title.
pub fn render(result: &CompressionResult) -> Table {
    let mut sums: Vec<(&'static str, f64, f64, usize)> = Vec::new();
    for m in &result.per_matrix {
        for p in &m.pairs {
            match sums.iter_mut().find(|(l, ..)| *l == p.pair) {
                Some(s) => {
                    s.1 += p.idx_reduction();
                    s.2 += p.measured_speedup();
                    s.3 += 1;
                }
                None => sums.push((p.pair, p.idx_reduction(), p.measured_speedup(), 1)),
            }
        }
    }
    let summary: Vec<String> = sums
        .iter()
        .map(|(l, red, spd, n)| {
            format!(
                "{l}: idx {} speedup {}",
                pct(red / *n as f64),
                f2(spd / *n as f64)
            )
        })
        .collect();
    let mut t = Table::new(vec![
        "Matrix",
        "Pair",
        "idx B/nnz",
        "idx red.",
        "real ms",
        "speedup",
        "pred ms",
        "pred spd",
    ])
    .title(format!(
        "Index compression ({}): measured vs predicted | mean {}",
        result.precision.label(),
        summary.join(" | ")
    ));
    for m in &result.per_matrix {
        for p in &m.pairs {
            t.add_row(vec![
                format!("{:02}.{}", m.id, m.name),
                format!("{} -> {}", p.base, p.comp),
                format!("{} -> {}", f2(p.base_idx), f2(p.comp_idx)),
                pct(p.idx_reduction()),
                format!("{:.4} -> {:.4}", p.base_real * 1e3, p.comp_real * 1e3),
                f2(p.measured_speedup()),
                format!("{:.4} -> {:.4}", p.base_pred * 1e3, p.comp_pred * 1e3),
                f2(p.predicted_speedup()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_pairs_shrink_index_bytes() {
        let opts = ExpOpts {
            scale: 0.02,
            seed: 9,
            min_time: 5e-5,
            batches: 1,
            matrices: Some(vec![4, 21]),
            calib_bytes: Some(1 << 16),
        };
        let res = run::<f64>(&opts);
        assert_eq!(res.per_matrix.len(), 2);
        for m in &res.per_matrix {
            assert_eq!(m.pairs.len(), 3);
            for p in &m.pairs {
                assert!(
                    p.comp_idx < p.base_idx,
                    "{}: {} !< {}",
                    p.pair,
                    p.comp_idx,
                    p.base_idx
                );
                assert!(p.base_pred > 0.0 && p.comp_pred > 0.0, "{}", p.pair);
                assert!(p.base_real > 0.0 && p.comp_real > 0.0);
            }
        }
        let _ = render(&res).to_string();
    }
}
