//! Figures 3–4 and Table IV: evaluating the performance models.
//!
//! Two metrics, per §V-B:
//!
//! * **prediction accuracy** (Figure 3) — for every matrix, the mean of
//!   `predicted / real` over all (block method, block) combinations, per
//!   model, plus the suite-wide mean absolute relative distance;
//! * **selection accuracy** (Figure 4, Table IV) — the real execution
//!   time of each model's chosen configuration, normalized by the best
//!   measured configuration, plus the count of exactly optimal choices.
//!
//! Model calibration (machine bandwidth, `t_b`, `nof`) happens once per
//! precision before the per-matrix loop. The bandwidth triad and the
//! `nof` profiling matrix are sized like the evaluated working sets so
//! the models see the memory level the matrices actually stream from
//! (DESIGN.md §2).

use crate::report::{f2, pct, Table};
use crate::sweep::ExpOpts;
use spmv_core::{Csr, Precision, SpMv};
use spmv_gen::{random_vector, suite, Geometry};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::KernelImpl;
use spmv_model::timing::measure_spmv;
use spmv_model::{
    profile_kernels, select_extended, BlockConfig, Config, MachineProfile, Model, ProfileOptions,
};
use spmv_telemetry::residual::ResidualKey;

/// Per-matrix, per-model evaluation record.
#[derive(Debug, Clone)]
pub struct MatrixEval {
    /// Paper id.
    pub id: usize,
    /// Matrix name.
    pub name: &'static str,
    /// Mean `predicted / real` over all configurations, per model
    /// (Figure 3's y-axis).
    pub avg_norm_pred: [f64; 3],
    /// Mean `|predicted - real| / real` over all configurations, per
    /// model (Figure 3's legend).
    pub avg_abs_dist: [f64; 3],
    /// `real(model's selection) / best real`, per model (Figure 4's
    /// y-axis).
    pub sel_norm: [f64; 3],
    /// Whether the selection was exactly the measured optimum, per model
    /// (Table IV's `#correct`).
    pub sel_correct: [bool; 3],
    /// Index-compression records: the fastest measured configuration per
    /// format family, with its streamed index footprint (extension).
    pub compression: Vec<CompressionStat>,
}

/// One family row of the index-compression report.
#[derive(Debug, Clone)]
pub struct CompressionStat {
    /// Format family label (e.g. `BCSR16` for narrow-index BCSR).
    pub family: &'static str,
    /// Display label of the family's fastest measured configuration.
    pub label: String,
    /// Index-structure bytes streamed per nonzero (matrix bytes minus
    /// the value array).
    pub index_bytes_per_nnz: f64,
    /// Padded-zero value bytes streamed per nonzero: the price of the
    /// format's fill. Zero for padding-free formats (CSR, the masked
    /// blocked variants, decomposed full blocks).
    pub fill_bytes_per_nnz: f64,
    /// OVERLAP-model prediction for that configuration, seconds.
    pub predicted: f64,
    /// Measured time, seconds.
    pub real: f64,
}

/// The format-family label of a block configuration: narrow-index and
/// delta variants get their own bucket so the compression report can
/// compare them against their full-width baselines.
fn family(block: BlockConfig) -> &'static str {
    match block {
        BlockConfig::Csr => "CSR",
        BlockConfig::CsrDelta => "CSR-DELTA",
        BlockConfig::Bcsr(_) => "BCSR",
        BlockConfig::BcsrNarrow(_) => "BCSR16",
        BlockConfig::BcsrDec(_) => "BCSR-DEC",
        BlockConfig::Bcsd(_) => "BCSD",
        BlockConfig::BcsdNarrow(_) => "BCSD16",
        BlockConfig::BcsdDec(_) => "BCSD-DEC",
        BlockConfig::BcsrMasked(_) => "BCSR-MASK",
        BlockConfig::BcsdMasked(_) => "BCSD-MASK",
        BlockConfig::SellCSigma { .. } => "SELL",
        BlockConfig::SellCSigmaNarrow { .. } => "SELL16",
    }
}

/// The block-shape label of a configuration for the residual table:
/// `-` for unblocked formats, `RxC` for the BCSR family, `bN` for BCSD
/// diagonal sizes.
fn shape_label(block: BlockConfig) -> String {
    match block {
        BlockConfig::Csr | BlockConfig::CsrDelta => "-".to_string(),
        BlockConfig::Bcsr(s)
        | BlockConfig::BcsrDec(s)
        | BlockConfig::BcsrNarrow(s)
        | BlockConfig::BcsrMasked(s) => {
            format!("{}x{}", s.r, s.c)
        }
        BlockConfig::Bcsd(b)
        | BlockConfig::BcsdDec(b)
        | BlockConfig::BcsdNarrow(b)
        | BlockConfig::BcsdMasked(b) => {
            format!("b{b}")
        }
        BlockConfig::SellCSigma { c, sigma } | BlockConfig::SellCSigmaNarrow { c, sigma } => {
            if sigma == spmv_formats::SELL_SIGMA_FULL {
                format!("c{c}sn")
            } else {
                format!("c{c}s{sigma}")
            }
        }
    }
}

/// The residual-tracker key of one (configuration, model) prediction.
fn residual_key(c: Config, model: Model) -> ResidualKey {
    ResidualKey {
        format: family(c.block).to_string(),
        shape: shape_label(c.block),
        kernel: match c.imp {
            KernelImpl::Scalar => "scalar".to_string(),
            KernelImpl::Simd => "simd".to_string(),
        },
        model: model.label().to_string(),
    }
}

/// Family display order of the compression report.
const FAMILIES: [&str; 10] = [
    "CSR",
    "CSR-DELTA",
    "BCSR",
    "BCSR16",
    "BCSR-MASK",
    "BCSR-DEC",
    "BCSD",
    "BCSD16",
    "BCSD-MASK",
    "BCSD-DEC",
];

/// The full model-evaluation dataset for one precision.
#[derive(Debug, Clone)]
pub struct ModelEvalResult {
    /// Evaluated precision.
    pub precision: Precision,
    /// The calibrated machine profile used for predictions.
    pub machine: MachineProfile,
    /// One record per matrix.
    pub per_matrix: Vec<MatrixEval>,
}

impl ModelEvalResult {
    /// Table IV's aggregates: `(#correct, mean distance from best)` per
    /// model.
    pub fn table4_rows(&self) -> [(Model, usize, f64); 3] {
        let mut out = [
            (Model::Mem, 0usize, 0.0f64),
            (Model::MemComp, 0, 0.0),
            (Model::Overlap, 0, 0.0),
        ];
        let n = self.per_matrix.len().max(1) as f64;
        for (mi, row) in out.iter_mut().enumerate() {
            row.1 = self
                .per_matrix
                .iter()
                .filter(|m| m.sel_correct[mi])
                .count();
            row.2 = self
                .per_matrix
                .iter()
                .map(|m| m.sel_norm[mi] - 1.0)
                .sum::<f64>()
                / n;
        }
        out
    }

    /// Suite-wide mean absolute prediction distance per model (Figure 3's
    /// legend numbers).
    pub fn mean_abs_dist(&self) -> [f64; 3] {
        let n = self.per_matrix.len().max(1) as f64;
        let mut out = [0.0; 3];
        for m in &self.per_matrix {
            for (o, d) in out.iter_mut().zip(m.avg_abs_dist) {
                *o += d / n;
            }
        }
        out
    }
}

/// Calibrates the machine and kernel profile for the given working-set
/// regime and returns them (exposed so binaries can reuse one
/// calibration across precisions).
pub fn calibrate<T: SimdScalar>(ws_hint_bytes: usize, opts: &ExpOpts) -> (MachineProfile, spmv_model::KernelProfile) {
    let footprint = opts.calib_bytes.unwrap_or_else(|| ws_hint_bytes.max(8 << 20));
    let machine = MachineProfile::detect_with(footprint);
    let profile = profile_kernels::<T>(
        &machine,
        &ProfileOptions {
            large_bytes: footprint,
            min_time: opts.min_time,
            batches: opts.batches,
            ..ProfileOptions::default()
        },
    );
    (machine, profile)
}

/// Runs the model evaluation over the selected suite at one precision.
pub fn run<T: SimdScalar>(opts: &ExpOpts) -> ModelEvalResult {
    // Build matrices first (ids 3..=30 as in Figures 3-4).
    let matrices: Vec<(usize, &'static str, Csr<T>)> = suite(opts.scale)
        .iter()
        .filter(|e| opts.selects(e.id) && e.geometry != Geometry::Special)
        .map(|e| (e.id, e.name, e.build(opts.seed).cast::<T>()))
        .collect();

    // Calibrate against the median evaluated working set.
    let mut ws: Vec<usize> = matrices.iter().map(|(_, _, m)| m.working_set_bytes()).collect();
    ws.sort_unstable();
    let ws_hint = ws.get(ws.len() / 2).copied().unwrap_or(8 << 20);
    let (machine, profile) = calibrate::<T>(ws_hint, opts);

    // The extended space (index-compression configurations included) is
    // both measured and offered to the models, so selections always have
    // a matching measurement.
    let configs = Config::enumerate_extended(true);
    let residuals = spmv_telemetry::residual::global();
    let mut per_matrix = Vec::with_capacity(matrices.len());
    for (id, name, csr) in &matrices {
        let _matrix_span = spmv_telemetry::span_with("bench.matrix", *id as u64);
        let x: Vec<T> = random_vector(spmv_core::MatrixShape::n_cols(csr), opts.seed);
        // Real times and index footprints for the whole model-space.
        let reals: Vec<(Config, f64, f64, f64)> = configs
            .iter()
            .map(|&c| {
                let built = c.build(csr);
                let nnz = csr.nnz().max(1) as f64;
                let idx_pn =
                    (built.matrix_bytes() - built.nnz_stored() * T::BYTES) as f64 / nnz;
                let fill_pn =
                    built.nnz_stored().saturating_sub(csr.nnz()) as f64 * T::BYTES as f64 / nnz;
                (
                    c,
                    measure_spmv(&built, &x, opts.min_time, opts.batches),
                    idx_pn,
                    fill_pn,
                )
            })
            .collect();
        let (best_config, best_real) = reals
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(c, t, ..)| (c, t))
            .expect("non-empty");

        let mut avg_norm_pred = [0.0; 3];
        let mut avg_abs_dist = [0.0; 3];
        let mut sel_norm = [0.0; 3];
        let mut sel_correct = [false; 3];
        for (mi, model) in Model::ALL.into_iter().enumerate() {
            // Prediction accuracy over every configuration.
            let mut norm_sum = 0.0;
            let mut dist_sum = 0.0;
            for &(c, real, ..) in &reals {
                let pred = model.predict(&c.substats(csr), &machine, &profile);
                norm_sum += pred / real;
                dist_sum += (pred - real).abs() / real;
                residuals.record(&residual_key(c, model), pred, real);
            }
            avg_norm_pred[mi] = norm_sum / reals.len() as f64;
            avg_abs_dist[mi] = dist_sum / reals.len() as f64;

            // Selection accuracy over the same extended space.
            let chosen = select_extended(model, csr, &machine, &profile, true).config;
            let real_of_chosen = reals
                .iter()
                .find(|(c, ..)| *c == chosen)
                .map(|&(_, t, ..)| t)
                .expect("selection comes from the same space");
            sel_norm[mi] = real_of_chosen / best_real;
            sel_correct[mi] = chosen == best_config;
        }

        // Index-compression report: fastest measured configuration per
        // format family, with its index footprint and OVERLAP prediction.
        let mut compression = Vec::new();
        for fam in FAMILIES {
            let best = reals
                .iter()
                .filter(|(c, ..)| family(c.block) == fam)
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some(&(c, real, idx_pn, fill_pn)) = best {
                compression.push(CompressionStat {
                    family: fam,
                    label: c.to_string(),
                    index_bytes_per_nnz: idx_pn,
                    fill_bytes_per_nnz: fill_pn,
                    predicted: Model::Overlap.predict(&c.substats(csr), &machine, &profile),
                    real,
                });
            }
        }

        per_matrix.push(MatrixEval {
            id: *id,
            name,
            avg_norm_pred,
            avg_abs_dist,
            sel_norm,
            sel_correct,
            compression,
        });
    }

    ModelEvalResult {
        precision: T::PRECISION,
        machine,
        per_matrix,
    }
}

/// Renders Figure 3 (normalized predictions per matrix).
pub fn render_figure3(result: &ModelEvalResult) -> Table {
    let dist = result.mean_abs_dist();
    let mut t = Table::new(vec![
        "Matrix", "t_mem/t_real", "t_memcomp/t_real", "t_overlap/t_real",
    ])
    .title(format!(
        "Figure 3 ({}): mean predicted/real per matrix | mean |pred-real|/real: \
         MEM {} MEMCOMP {} OVERLAP {}",
        result.precision.label(),
        pct(dist[0]),
        pct(dist[1]),
        pct(dist[2]),
    ));
    for m in &result.per_matrix {
        t.add_row(vec![
            format!("{:02}.{}", m.id, m.name),
            f2(m.avg_norm_pred[0]),
            f2(m.avg_norm_pred[1]),
            f2(m.avg_norm_pred[2]),
        ]);
    }
    t
}

/// Renders Figure 4 (selection quality per matrix).
pub fn render_figure4(result: &ModelEvalResult) -> Table {
    let mut t = Table::new(vec!["Matrix", "t_mem", "t_memcomp", "t_overlap"]).title(format!(
        "Figure 4 ({}): real time of each model's selection / best time",
        result.precision.label()
    ));
    for m in &result.per_matrix {
        t.add_row(vec![
            format!("{:02}.{}", m.id, m.name),
            f2(m.sel_norm[0]),
            f2(m.sel_norm[1]),
            f2(m.sel_norm[2]),
        ]);
    }
    t
}

/// Renders the index-compression report: per matrix and format family,
/// the fastest measured configuration with its index bytes per nonzero
/// and its predicted vs. measured time.
pub fn render_compression(result: &ModelEvalResult) -> Table {
    let mut t = Table::new(vec![
        "Matrix",
        "Family",
        "Best config",
        "idx B/nnz",
        "fill B/nnz",
        "pred ms",
        "real ms",
    ])
    .title(format!(
        "Index compression ({}): per-family index and fill footprint and times",
        result.precision.label()
    ));
    for m in &result.per_matrix {
        for c in &m.compression {
            t.add_row(vec![
                format!("{:02}.{}", m.id, m.name),
                c.family.to_string(),
                c.label.clone(),
                f2(c.index_bytes_per_nnz),
                f2(c.fill_bytes_per_nnz),
                format!("{:.4}", c.predicted * 1e3),
                format!("{:.4}", c.real * 1e3),
            ]);
        }
    }
    t
}

/// Renders the prediction-residual table accumulated by [`run`] across
/// every evaluated (format, shape, kernel, model) population — the
/// misprediction surface behind Figure 3's averages. Empty string when
/// nothing was recorded.
pub fn render_residuals() -> String {
    let tracker = spmv_telemetry::residual::global();
    if tracker.is_empty() {
        String::new()
    } else {
        tracker.render()
    }
}

/// Renders Table IV from one or two precisions' results.
pub fn render_table4(results: &[&ModelEvalResult]) -> Table {
    let mut headers = vec!["Model".to_string()];
    for r in results {
        headers.push(format!("#correct ({})", r.precision.label()));
        headers.push(format!("off best ({})", r.precision.label()));
    }
    let mut t = Table::new(headers)
        .title("Table IV: optimal selections per model and distance from best");
    for (mi, model) in Model::ALL.into_iter().enumerate() {
        let mut row = vec![model.label().to_string()];
        for r in results {
            let rows = r.table4_rows();
            row.push(rows[mi].1.to_string());
            row.push(pct(rows[mi].2));
        }
        t.add_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(ids: Vec<usize>) -> ExpOpts {
        ExpOpts {
            scale: 0.02,
            seed: 9,
            min_time: 5e-5,
            batches: 1,
            matrices: Some(ids),
            calib_bytes: Some(1 << 16),
        }
    }

    #[test]
    fn evaluates_models_end_to_end() {
        let res = run::<f64>(&quick_opts(vec![4, 21]));
        assert_eq!(res.per_matrix.len(), 2);
        for m in &res.per_matrix {
            for mi in 0..3 {
                assert!(m.avg_norm_pred[mi] > 0.0);
                assert!(m.sel_norm[mi] >= 1.0 - 1e-12, "selection can't beat best");
            }
        }
        let t4 = res.table4_rows();
        assert!(t4.iter().all(|&(_, correct, off)| correct <= 2 && off >= -1e-12));
        // Compression report: every family measured, and CSR-Δ must
        // stream strictly fewer index bytes than CSR.
        for m in &res.per_matrix {
            assert_eq!(m.compression.len(), FAMILIES.len());
            let idx_of = |fam: &str| {
                m.compression
                    .iter()
                    .find(|c| c.family == fam)
                    .map(|c| c.index_bytes_per_nnz)
                    .expect("family present")
            };
            assert!(idx_of("CSR-DELTA") < idx_of("CSR"));
            // Padding-free families must report zero fill bytes.
            for c in &m.compression {
                assert!(c.fill_bytes_per_nnz >= 0.0);
                if matches!(c.family, "CSR" | "CSR-DELTA" | "BCSR-MASK" | "BCSD-MASK") {
                    assert_eq!(c.fill_bytes_per_nnz, 0.0, "{} must be padding-free", c.family);
                }
            }
        }
        // Render without panicking.
        let _ = render_figure3(&res).to_string();
        let _ = render_figure4(&res).to_string();
        let _ = render_table4(&[&res]).to_string();
        let _ = render_compression(&res).to_string();
        // The run fed the global residual tracker: one row per
        // (format, shape, kernel, model) population it evaluated.
        let tracker = spmv_telemetry::residual::global();
        assert!(!tracker.is_empty());
        let table = render_residuals();
        for needle in ["MEM", "OVERLAP", "CSR", "BCSR", "scalar"] {
            assert!(table.contains(needle), "residual table misses {needle}:\n{table}");
        }
    }

    #[test]
    fn specials_are_excluded() {
        let res = run::<f32>(&quick_opts(vec![1, 2, 4]));
        assert_eq!(res.per_matrix.len(), 1);
        assert_eq!(res.per_matrix[0].id, 4);
        assert_eq!(res.precision, Precision::Single);
    }
}
