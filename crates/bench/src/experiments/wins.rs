//! Tables II and III: the single-threaded format evaluation.
//!
//! One full sweep per matrix and precision feeds both tables: Table II
//! counts, for each of the four configuration columns (dp, dp-simd, sp,
//! sp-simd), how many matrices each format wins; Table III reports each
//! format's min/avg/max speedup over CSR per matrix for the
//! double-precision scalar configuration.

use crate::report::{f2, Table};
use crate::sweep::{
    build_both, column_label, ExpOpts, MatrixSweep, SpeedupStats, COLUMNS,
};
use spmv_formats::FormatKind;
use spmv_kernels::KernelImpl;
use spmv_gen::{suite, Geometry};
use std::collections::BTreeMap;

/// Per-matrix sweep outcome.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Paper id.
    pub id: usize,
    /// Matrix name.
    pub name: &'static str,
    /// Geometry class (specials are excluded from win counts).
    pub geometry: Geometry,
    /// Winner format of each configuration column, in [`COLUMNS`] order.
    pub winners: [FormatKind; 4],
    /// Per-format speedups over CSR, dp scalar (Table III).
    pub speedups: Vec<(FormatKind, SpeedupStats)>,
}

/// The complete Tables II/III dataset.
#[derive(Debug, Clone)]
pub struct WinsResult {
    /// One outcome per measured matrix.
    pub outcomes: Vec<MatrixOutcome>,
}

/// Runs the single-threaded evaluation sweep over the selected suite.
pub fn run(opts: &ExpOpts) -> WinsResult {
    let mut outcomes = Vec::new();
    for entry in suite(opts.scale) {
        if !opts.selects(entry.id) {
            continue;
        }
        let (m64, m32) = build_both(&entry, opts.seed);
        let sweep64 = MatrixSweep::run(&m64, opts);
        let sweep32 = MatrixSweep::run(&m32, opts);
        let winners = [
            sweep64.column_winner(false).0.kind(),
            sweep64.column_winner(true).0.kind(),
            sweep32.column_winner(false).0.kind(),
            sweep32.column_winner(true).0.kind(),
        ];
        let speedups = FormatKind::EVALUATED
            .into_iter()
            .filter(|&k| k != FormatKind::Csr)
            .filter_map(|k| {
                sweep64
                    .speedups_over_csr(k, KernelImpl::Scalar)
                    .map(|s| (k, s))
            })
            .collect();
        outcomes.push(MatrixOutcome {
            id: entry.id,
            name: entry.name,
            geometry: entry.geometry,
            winners,
            speedups,
        });
    }
    WinsResult { outcomes }
}

impl WinsResult {
    /// Win counts per format per configuration column, specials excluded
    /// (Table II ignores the dense and random matrices).
    pub fn win_counts(&self) -> BTreeMap<FormatKind, [usize; 4]> {
        let mut counts: BTreeMap<FormatKind, [usize; 4]> = FormatKind::EVALUATED
            .into_iter()
            .map(|k| (k, [0; 4]))
            .collect();
        for o in &self.outcomes {
            if o.geometry == Geometry::Special {
                continue;
            }
            for (col, &winner) in o.winners.iter().enumerate() {
                counts.entry(winner).or_insert([0; 4])[col] += 1;
            }
        }
        counts
    }
}

/// Renders Table II.
pub fn render_table2(result: &WinsResult) -> Table {
    let mut headers = vec!["Method/Configuration".to_string()];
    headers.extend(COLUMNS.iter().map(|&(p, s)| column_label(p, s)));
    let mut t = Table::new(headers).title(
        "Table II: matrices won per format and configuration (specials excluded)",
    );
    let counts = result.win_counts();
    for kind in FormatKind::EVALUATED {
        let c = counts.get(&kind).copied().unwrap_or([0; 4]);
        let cell = |col: usize| {
            // The paper does not run 1D-VBL in the SIMD columns.
            if kind == FormatKind::Vbl && COLUMNS[col].1 {
                "-".to_string()
            } else {
                c[col].to_string()
            }
        };
        t.add_row(vec![
            kind.label().to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
        ]);
    }
    t
}

/// Renders Table III (dp scalar speedups over CSR, min/avg/max per
/// format, with the suite average as the final row).
pub fn render_table3(result: &WinsResult) -> Table {
    let kinds: Vec<FormatKind> = FormatKind::EVALUATED
        .into_iter()
        .filter(|&k| k != FormatKind::Csr)
        .collect();
    let mut headers = vec!["Matrix".to_string()];
    for k in &kinds {
        if *k == FormatKind::Vbl {
            headers.push(k.label().to_string());
        } else {
            headers.push(format!("{} min", k.label()));
            headers.push(format!("{} avg", k.label()));
            headers.push(format!("{} max", k.label()));
        }
    }
    let mut t = Table::new(headers)
        .title("Table III: speedups over CSR per matrix (double precision, scalar kernels)");

    let mut sums: BTreeMap<FormatKind, (f64, f64, f64)> = BTreeMap::new();
    for o in &result.outcomes {
        let mut row = vec![format!("{:02}.{}", o.id, o.name)];
        for k in &kinds {
            match o.speedups.iter().find(|(kk, _)| kk == k) {
                Some((_, s)) => {
                    let e = sums.entry(*k).or_insert((0.0, 0.0, 0.0));
                    e.0 += s.min;
                    e.1 += s.avg;
                    e.2 += s.max;
                    if *k == FormatKind::Vbl {
                        row.push(f2(s.avg));
                    } else {
                        row.push(f2(s.min));
                        row.push(f2(s.avg));
                        row.push(f2(s.max));
                    }
                }
                None => {
                    let cells = if *k == FormatKind::Vbl { 1 } else { 3 };
                    row.extend(std::iter::repeat_n("-".to_string(), cells));
                }
            }
        }
        t.add_row(row);
    }
    // Suite average row, as in the paper.
    let n = result.outcomes.len().max(1) as f64;
    let mut avg_row = vec!["Average".to_string()];
    for k in &kinds {
        let (mn, av, mx) = sums.get(k).copied().unwrap_or((0.0, 0.0, 0.0));
        if *k == FormatKind::Vbl {
            avg_row.push(f2(av / n));
        } else {
            avg_row.push(f2(mn / n));
            avg_row.push(f2(av / n));
            avg_row.push(f2(mx / n));
        }
    }
    t.add_row(avg_row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts(ids: Vec<usize>) -> ExpOpts {
        ExpOpts {
            scale: 0.02,
            seed: 3,
            min_time: 5e-5,
            batches: 1,
            matrices: Some(ids),
            calib_bytes: None,
        }
    }

    #[test]
    fn produces_winners_and_speedups() {
        let res = run(&quick_opts(vec![1, 4, 21]));
        assert_eq!(res.outcomes.len(), 3);
        for o in &res.outcomes {
            assert_eq!(o.speedups.len(), 5); // all non-CSR formats present
            for (_, s) in &o.speedups {
                assert!(s.min <= s.avg && s.avg <= s.max);
            }
        }
    }

    #[test]
    fn specials_excluded_from_win_counts() {
        let res = run(&quick_opts(vec![1, 2]));
        let counts = res.win_counts();
        let total: usize = counts.values().map(|c| c.iter().sum::<usize>()).sum();
        assert_eq!(total, 0, "special matrices must not contribute wins");
    }

    #[test]
    fn win_totals_match_matrix_count() {
        let res = run(&quick_opts(vec![4, 20]));
        let counts = res.win_counts();
        for col in 0..4 {
            let total: usize = counts.values().map(|c| c[col]).sum();
            assert_eq!(total, 2, "each column awards exactly one win per matrix");
        }
    }

    #[test]
    fn tables_render() {
        let res = run(&quick_opts(vec![4]));
        let t2 = render_table2(&res);
        assert_eq!(t2.n_rows(), 6);
        let t3 = render_table3(&res);
        assert_eq!(t3.n_rows(), 2); // one matrix + average
        let s = t3.to_string();
        assert!(s.contains("Average"));
    }
}
