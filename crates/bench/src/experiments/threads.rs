//! Figure 2: wins per format across 1, 2, and 4 cores.
//!
//! Mirrors §V-A's multithreaded evaluation: the matrix is split row-wise
//! into as many nnz-balanced strips as threads (padding-aware for the
//! padded formats), each strip stored independently, and one thread runs
//! each strip. Per matrix and format, the block shape is chosen by the
//! single-threaded sweep and then measured at every thread count — the
//! winner per (cores, precision) cell is the fastest format.

use crate::report::Table;
use crate::sweep::{build_both, ExpOpts};
use spmv_core::{Csr, MatrixShape, Precision};
use spmv_formats::FormatKind;
use spmv_gen::{random_vector, suite, Geometry};
use spmv_kernels::simd::SimdScalar;
use spmv_model::timing::measure_spmv;
use spmv_model::{BlockConfig, Config};
use spmv_parallel::{
    bcsd_unit_weights, bcsr_unit_weights, csr_unit_weights, sell_unit_weights, PinPolicy, SpmvPool,
};
use std::collections::BTreeMap;

/// Thread counts evaluated by Figure 2.
pub const THREADS: [usize; 3] = [1, 2, 4];

/// Per-unit nonzero weights for formats without padding, aligned to
/// `unit` rows.
fn unit_nnz_weights<T: spmv_core::Scalar>(csr: &Csr<T>, unit: usize) -> Vec<u64> {
    let n_units = csr.n_rows().div_ceil(unit);
    let mut w = vec![0u64; n_units];
    for i in 0..csr.n_rows() {
        w[i / unit] += csr.row_nnz(i) as u64;
    }
    w
}

/// Builds the padding-aware partition weights and unit height for a
/// configuration (§V-A: padded methods weigh their padding zeros too).
fn partition_inputs<T: SimdScalar>(csr: &Csr<T>, config: Config) -> (Vec<u64>, usize) {
    match config.block {
        BlockConfig::Csr | BlockConfig::CsrDelta => (csr_unit_weights(csr), 1),
        BlockConfig::Bcsr(shape) | BlockConfig::BcsrNarrow(shape) => {
            (bcsr_unit_weights(csr, shape), shape.rows())
        }
        BlockConfig::BcsrDec(shape) => (unit_nnz_weights(csr, shape.rows()), shape.rows()),
        BlockConfig::Bcsd(b) | BlockConfig::BcsdNarrow(b) => (bcsd_unit_weights(csr, b), b),
        BlockConfig::BcsdDec(b) => (unit_nnz_weights(csr, b), b),
        // Masked formats store no padding, so true nonzeros are the work.
        BlockConfig::BcsrMasked(shape) => (unit_nnz_weights(csr, shape.rows()), shape.rows()),
        BlockConfig::BcsdMasked(b) => (unit_nnz_weights(csr, b), b),
        // SELL strips split on slice boundaries; weights count padded slices.
        BlockConfig::SellCSigma { c, .. } | BlockConfig::SellCSigmaNarrow { c, .. } => {
            (sell_unit_weights(csr, c), c)
        }
    }
}

/// Measures `config` on `csr` at the given thread count.
///
/// Runs on a persistent, core-pinned [`SpmvPool`] rather than per-call
/// scoped threads, so the measured time is the kernel plus one epoch
/// barrier — not a thread spawn/join per multiply, which used to
/// dominate on small matrices (see `docs/PARALLEL.md` and the
/// "Measurement methodology" section of EXPERIMENTS.md).
pub fn measure_threaded<T: SimdScalar>(
    csr: &Csr<T>,
    config: Config,
    threads: usize,
    opts: &ExpOpts,
) -> f64 {
    let (weights, unit) = partition_inputs(csr, config);
    let pool = SpmvPool::from_csr(
        csr,
        threads,
        &weights,
        unit,
        |s| config.build(s),
        PinPolicy::Compact,
    );
    let x: Vec<T> = random_vector(csr.n_cols(), opts.seed);
    measure_spmv(&pool, &x, opts.min_time, opts.batches)
}

/// Picks each format's best block configuration by single-threaded time
/// (scalar kernels, as in Figure 2).
fn best_blocks_per_format<T: SimdScalar>(
    csr: &Csr<T>,
    opts: &ExpOpts,
) -> Vec<(FormatKind, Config)> {
    let mut best: BTreeMap<FormatKind, (Config, f64)> = BTreeMap::new();
    let x: Vec<T> = random_vector(csr.n_cols(), opts.seed);
    for config in Config::enumerate(false) {
        let built = config.build(csr);
        let t = measure_spmv(&built, &x, opts.min_time, opts.batches);
        let kind = config.block.kind();
        match best.get(&kind) {
            Some(&(_, tb)) if tb <= t => {}
            _ => {
                best.insert(kind, (config, t));
            }
        }
    }
    best.into_iter().map(|(k, (c, _))| (k, c)).collect()
}

/// Figure 2's dataset: win counts per format per (threads, precision).
#[derive(Debug, Clone, Default)]
pub struct Fig2Result {
    /// `wins[format][(threads index, precision index)]`, precision 0=dp.
    pub wins: BTreeMap<FormatKind, [[usize; 2]; 3]>,
    /// Matrices measured (specials excluded).
    pub n_matrices: usize,
}

/// Runs the multithreaded evaluation over the selected suite.
pub fn run(opts: &ExpOpts) -> Fig2Result {
    let mut result = Fig2Result::default();
    for entry in suite(opts.scale) {
        if !opts.selects(entry.id) || entry.geometry == Geometry::Special {
            continue;
        }
        let (m64, m32) = build_both(&entry, opts.seed);
        result.n_matrices += 1;
        for (pi, precision) in [Precision::Double, Precision::Single]
            .into_iter()
            .enumerate()
        {
            match precision {
                Precision::Double => run_one(&m64, opts, pi, &mut result),
                Precision::Single => run_one(&m32, opts, pi, &mut result),
            }
        }
    }
    result
}

fn run_one<T: SimdScalar>(csr: &Csr<T>, opts: &ExpOpts, pi: usize, result: &mut Fig2Result) {
    let picks = best_blocks_per_format(csr, opts);
    for (ti, &threads) in THREADS.iter().enumerate() {
        let mut best: Option<(FormatKind, f64)> = None;
        for &(kind, config) in &picks {
            let t = measure_threaded(csr, config, threads, opts);
            if best.is_none_or(|(_, tb)| t < tb) {
                best = Some((kind, t));
            }
        }
        let (winner, _) = best.expect("at least CSR measured");
        result.wins.entry(winner).or_default()[ti][pi] += 1;
    }
}

/// Renders the Figure 2 win distribution as a table (rows = formats,
/// columns = cores x precision).
pub fn render(result: &Fig2Result) -> Table {
    let mut headers = vec!["Method".to_string()];
    for &threads in &THREADS {
        for p in ["dp", "sp"] {
            headers.push(format!("{threads}c {p}"));
        }
    }
    let mut t = Table::new(headers).title(format!(
        "Figure 2: wins per format across cores ({} matrices, specials excluded)",
        result.n_matrices
    ));
    for kind in FormatKind::MODELED {
        let w = result.wins.get(&kind).copied().unwrap_or_default();
        t.add_row(vec![
            kind.label().to_string(),
            w[0][0].to_string(),
            w[0][1].to_string(),
            w[1][0].to_string(),
            w[1][1].to_string(),
            w[2][0].to_string(),
            w[2][1].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_gen::GenSpec;

    fn quick_opts(ids: Vec<usize>) -> ExpOpts {
        ExpOpts {
            scale: 0.02,
            seed: 5,
            min_time: 5e-5,
            batches: 1,
            matrices: Some(ids),
            calib_bytes: None,
        }
    }

    #[test]
    fn threaded_measurement_is_positive_and_correct() {
        let csr = GenSpec::Stencil2d { nx: 16, ny: 16 }.build(1);
        let opts = quick_opts(vec![]);
        for threads in THREADS {
            let t = measure_threaded(&csr, Config::CSR, threads, &opts);
            assert!(t > 0.0);
        }
    }

    #[test]
    fn wins_sum_to_matrix_count_per_cell() {
        let opts = quick_opts(vec![4, 23]);
        let res = run(&opts);
        assert_eq!(res.n_matrices, 2);
        for ti in 0..3 {
            for pi in 0..2 {
                let total: usize = res.wins.values().map(|w| w[ti][pi]).sum();
                assert_eq!(total, 2, "cell ({ti},{pi})");
            }
        }
        let table = render(&res);
        assert_eq!(table.n_rows(), 5);
    }

    #[test]
    fn partition_inputs_align_units() {
        let csr = GenSpec::FemBlocks {
            nodes: 12,
            dof: 3,
            neighbors: 3,
        }
        .build(2);
        let shape = spmv_kernels::BlockShape::new(3, 2).unwrap();
        let (w, unit) = partition_inputs(
            &csr,
            Config {
                block: BlockConfig::Bcsr(shape),
                imp: spmv_kernels::KernelImpl::Scalar,
            },
        );
        assert_eq!(unit, 3);
        assert_eq!(w.len(), 12); // 36 rows / height 3
    }
}
