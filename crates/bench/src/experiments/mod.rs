//! Experiment drivers, one module per paper artifact.
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`table1`] | Table I — the matrix suite |
//! | [`wins`] | Table II (wins per format) and Table III (speedups over CSR) |
//! | [`threads`] | Figure 2 — wins across 1/2/4 cores |
//! | [`modeleval`] | Figures 3–4 and Table IV — model accuracy and selection quality |
//! | [`compression`] | `results/compression.txt` — index-compression extension |
//!
//! Each `run` function returns structured results; the harness binaries
//! in `src/bin/` parse options, call `run`, and print the paper-shaped
//! tables.

pub mod compression;
pub mod modeleval;
pub mod table1;
pub mod threads;
pub mod wins;
