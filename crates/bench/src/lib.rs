#![warn(missing_docs)]

//! The experiment harness: measurement sweeps, report rendering, and the
//! binaries that regenerate every table and figure of the paper.
//!
//! Regeneration map (see DESIGN.md §6 for the full experiment index):
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table I | `cargo run -p spmv-bench --release --bin table1` |
//! | Table II | `... --bin table2` |
//! | Table III | `... --bin table3` |
//! | Table IV | `... --bin table4` |
//! | Figure 2 | `... --bin figure2` |
//! | Figure 3 | `... --bin figure3` |
//! | Figure 4 | `... --bin figure4` |
//! | `results/compression.txt` | `... --bin compression` |
//!
//! All binaries share the options parsed by [`cli::Args`]; run any of
//! them with `--help` for the list. Criterion microbenchmarks live in
//! `benches/`.

pub mod cli;
pub mod diagnostics;
pub mod experiments;
pub mod report;
pub mod sweep;

pub use cli::{write_trace, Args};
pub use report::{Align, Table};
pub use sweep::{AnyConfig, ExpOpts, MatrixSweep, SpeedupStats};
