//! The paper's §V-B irregularity diagnostic.
//!
//! Figure 3 shows four matrices (#12, #14, #15, #28) where MEM and
//! OVERLAP badly under-predict: they are *latency-bound* rather than
//! bandwidth-bound, stalling on cache misses from irregular input-vector
//! accesses. The paper verifies this with "a special custom benchmark …
//! \[that\] zeros out the col_ind structure of CSR, so that no misses are
//! incurred due to irregular accesses"; matrices whose probe runs much
//! faster than the original are latency-bound ("the performance of these
//! matrices doubled, and even quadrupled in the case of matrix #12").
//!
//! [`latency_probe`] reproduces that benchmark, and
//! [`irregularity_fraction`] provides the static counterpart: the share
//! of input-vector accesses that jump far enough from their predecessor
//! to defeat a hardware prefetcher.

use crate::sweep::ExpOpts;
use spmv_core::{Csr, MatrixShape, Scalar};
use spmv_gen::random_vector;
use spmv_model::timing::measure_spmv;

/// Result of the zeroed-`col_ind` probe on one matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// Seconds per SpMV with the original column indices.
    pub t_original: f64,
    /// Seconds per SpMV with all column indices forced to zero
    /// (identical memory traffic, perfectly regular x accesses).
    pub t_zeroed: f64,
}

impl ProbeResult {
    /// `t_original / t_zeroed`: ≈1 for bandwidth-bound matrices, ≫1 for
    /// latency-bound ones (the paper saw 2x-4x on its four outliers).
    pub fn slowdown(&self) -> f64 {
        self.t_original / self.t_zeroed
    }

    /// The paper's verdict threshold: a matrix whose irregular accesses
    /// cost more than ~1.5x is latency- rather than bandwidth-bound.
    pub fn is_latency_bound(&self) -> bool {
        self.slowdown() > 1.5
    }

    /// Whether the probe's verdict is trustworthy: sub-50 µs kernels sit
    /// at the timer's granularity and their ratios are noise.
    pub fn is_reliable(&self) -> bool {
        self.t_original > 50e-6 && self.t_zeroed > 50e-6
    }
}

/// Runs the §V-B probe: measures CSR SpMV with real and zeroed column
/// indices under identical conditions.
pub fn latency_probe<T: Scalar>(csr: &Csr<T>, opts: &ExpOpts) -> ProbeResult {
    let x: Vec<T> = random_vector(csr.n_cols(), opts.seed);
    let t_original = measure_spmv(csr, &x, opts.min_time, opts.batches);
    let probe = csr.zero_col_ind_probe();
    let t_zeroed = measure_spmv(&probe, &x, opts.min_time, opts.batches);
    ProbeResult {
        t_original,
        t_zeroed,
    }
}

/// Static irregularity measure: the fraction of nonzeros whose column is
/// further than `window` entries from the previous nonzero in the same
/// row — accesses a stride prefetcher cannot cover.
pub fn irregularity_fraction<T: Scalar>(csr: &Csr<T>, window: usize) -> f64 {
    let mut irregular = 0usize;
    let mut total = 0usize;
    for i in 0..csr.n_rows() {
        let (cols, _) = csr.row(i);
        for w in cols.windows(2) {
            total += 1;
            if (w[1] - w[0]) as usize > window {
                irregular += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        irregular as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_gen::GenSpec;

    fn quick_opts() -> ExpOpts {
        ExpOpts {
            min_time: 2e-4,
            batches: 1,
            ..ExpOpts::default()
        }
    }

    #[test]
    fn probe_returns_positive_times() {
        let csr = GenSpec::Random {
            n: 400,
            m: 400,
            nnz_per_row: 6,
        }
        .build(1);
        let r = latency_probe(&csr, &quick_opts());
        assert!(r.t_original > 0.0 && r.t_zeroed > 0.0);
        assert!(r.slowdown() > 0.1);
    }

    #[test]
    fn dense_rows_are_regular() {
        let csr = GenSpec::Dense { n: 40, m: 40 }.build(0);
        assert_eq!(irregularity_fraction(&csr, 16), 0.0);
    }

    #[test]
    fn scattered_rows_are_irregular() {
        let csr = GenSpec::Random {
            n: 300,
            m: 30_000,
            nnz_per_row: 8,
        }
        .build(2);
        assert!(
            irregularity_fraction(&csr, 16) > 0.8,
            "random wide rows must be mostly irregular"
        );
    }

    #[test]
    fn stencil_is_partly_regular() {
        // 5-point stencil: the off-diagonal jumps are large but the
        // diagonal neighbourhood is tight; irregularity sits between the
        // extremes.
        let csr = GenSpec::Stencil2d { nx: 40, ny: 40 }.build(0);
        let f = irregularity_fraction(&csr, 16);
        assert!(f > 0.05 && f < 0.8, "stencil irregularity {f}");
    }
}
