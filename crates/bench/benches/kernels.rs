//! Criterion microbenchmarks of the block kernels — the measurements
//! behind the models' `t_b` profiling (§IV): every BCSR shape and BCSD
//! size, scalar vs SIMD, on an L1-resident dense matrix.
//!
//! Run: `cargo bench -p spmv-bench --bench kernels`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::{Csr, DenseMatrix, MatrixShape, SpMv};
use spmv_formats::{Bcsd, Bcsr};
use spmv_kernels::{BlockShape, KernelImpl, BCSD_SIZES};

/// A 48x48 dense matrix: ~18 KiB of doubles, L1-resident with its
/// vectors on typical machines, divisible by every block shape.
fn l1_dense() -> Csr<f64> {
    Csr::from_dense(&DenseMatrix::profiling(48, 48))
}

fn bench_bcsr_kernels(c: &mut Criterion) {
    let csr = l1_dense();
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut y = vec![0.0f64; csr.n_rows()];
    let mut group = c.benchmark_group("kernel/bcsr");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    for shape in BlockShape::search_space() {
        for imp in KernelImpl::ALL {
            let bcsr = Bcsr::from_csr(&csr, shape, imp);
            group.bench_function(BenchmarkId::new(shape.to_string(), imp.to_string()), |b| {
                b.iter(|| bcsr.spmv_into(&x, &mut y))
            });
        }
    }
    group.finish();
}

fn bench_bcsd_kernels(c: &mut Criterion) {
    let csr = l1_dense();
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    let mut y = vec![0.0f64; csr.n_rows()];
    let mut group = c.benchmark_group("kernel/bcsd");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    for b_size in BCSD_SIZES {
        for imp in KernelImpl::ALL {
            let bcsd = Bcsd::from_csr(&csr, b_size, imp);
            group.bench_function(BenchmarkId::new(b_size.to_string(), imp.to_string()), |b| {
                b.iter(|| bcsd.spmv_into(&x, &mut y))
            });
        }
    }
    group.finish();
}

fn bench_csr_baseline(c: &mut Criterion) {
    let csr = l1_dense();
    let csr32 = csr.cast::<f32>();
    let x: Vec<f64> = (0..csr.n_cols()).map(|i| 1.0 + (i % 5) as f64).collect();
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let mut y = vec![0.0f64; csr.n_rows()];
    let mut y32 = vec![0.0f32; csr.n_rows()];
    let mut group = c.benchmark_group("kernel/csr");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.bench_function("dp", |b| b.iter(|| csr.spmv_into(&x, &mut y)));
    group.bench_function("sp", |b| b.iter(|| csr32.spmv_into(&x32, &mut y32)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_csr_baseline, bench_bcsr_kernels, bench_bcsd_kernels
}
criterion_main!(benches);
