//! Criterion benchmarks for the multi-vector (SpMM) path: one `k`-vector
//! call vs `k` independent SpMV calls, per format.
//!
//! The matrix arrays stream once per call regardless of `k`, so on
//! memory-bound matrices the batched call should approach `k`-fold
//! amortization of the structure traffic — the effect the `spmm/...`
//! groups quantify.
//!
//! Run: `cargo bench -p spmv-bench --bench spmm`
//! (set `SPMV_BENCH_SCALE` to grow the matrices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::{Csr, MatrixShape, SpMv, SpMvMulti};
use spmv_formats::{Bcsd, Bcsr, BcsrDec, Vbl};
use spmv_gen::{random_vector, GenSpec};
use spmv_kernels::{BlockShape, KernelImpl};

const KS: [usize; 3] = [2, 4, 8];

fn scale() -> f64 {
    std::env::var("SPMV_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn workloads() -> Vec<(&'static str, Csr<f64>)> {
    let s = scale();
    let n = |base: usize| (base as f64 * s) as usize;
    vec![
        (
            "fem3dof",
            GenSpec::FemBlocks {
                nodes: n(4000),
                dof: 3,
                neighbors: 9,
            }
            .build(1),
        ),
        (
            "diag",
            GenSpec::DiagRuns {
                n: n(40_000),
                n_diags: 8,
            }
            .build(2),
        ),
    ]
}

/// Benchmarks `mat` under the `k` single calls vs one `k`-vector call
/// comparison, labeling rows `serial/<k>` and `multi/<k>`.
fn bench_pair<M: SpMvMulti<f64>>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    label: &str,
    mat: &M,
    x: &[f64],
) {
    let (m, n) = (mat.n_cols(), mat.n_rows());
    for k in KS {
        let mut y = vec![0.0f64; n * k];
        group.bench_function(BenchmarkId::new(format!("{label}-serial"), k), |b| {
            b.iter(|| {
                for t in 0..k {
                    mat.spmv_into(&x[t * m..(t + 1) * m], &mut y[t * n..(t + 1) * n]);
                }
            })
        });
        group.bench_function(BenchmarkId::new(format!("{label}-multi"), k), |b| {
            b.iter(|| mat.spmv_multi_into(x, &mut y, k))
        });
    }
}

fn bench_spmm(c: &mut Criterion) {
    let kmax = *KS.iter().max().unwrap();
    for (name, csr) in workloads() {
        let x: Vec<f64> = random_vector(csr.n_cols() * kmax, 7);
        let mut group = c.benchmark_group(format!("spmm/{name}"));
        // Per-call matrix traffic: the quantity batching amortizes.
        group.throughput(Throughput::Bytes(csr.matrix_bytes() as u64));

        bench_pair(&mut group, "csr", &csr, &x);
        let shape = BlockShape::new(3, 2).unwrap();
        for imp in KernelImpl::ALL {
            let bcsr = Bcsr::from_csr(&csr, shape, imp);
            bench_pair(&mut group, &format!("bcsr-3x2-{imp}"), &bcsr, &x);
        }
        let dec = BcsrDec::from_csr(&csr, BlockShape::new(2, 2).unwrap(), KernelImpl::Scalar);
        bench_pair(&mut group, "bcsr-dec-2x2", &dec, &x);
        let bcsd = Bcsd::from_csr(&csr, 4, KernelImpl::Simd);
        bench_pair(&mut group, "bcsd-4-simd", &bcsd, &x);
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        bench_pair(&mut group, "vbl", &vbl, &x);
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmm
}
criterion_main!(benches);
