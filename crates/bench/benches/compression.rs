//! Criterion benchmarks for the index-compression extension: each
//! compressed format head-to-head against its full-width baseline on the
//! same workloads as the formats bench.
//!
//! Run: `cargo bench -p spmv-bench --bench compression`
//! (set `SPMV_BENCH_SCALE` to grow the matrices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::{Csr, MatrixShape, SpMv};
use spmv_formats::{Bcsd, Bcsr, CsrDelta, Vbl};
use spmv_gen::{random_vector, GenSpec};
use spmv_kernels::{BlockShape, KernelImpl};

fn scale() -> f64 {
    std::env::var("SPMV_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn workloads() -> Vec<(&'static str, Csr<f64>)> {
    let s = scale();
    let n = |base: usize| (base as f64 * s) as usize;
    vec![
        (
            "fem3dof",
            GenSpec::FemBlocks {
                nodes: n(4000),
                dof: 3,
                neighbors: 9,
            }
            .build(1),
        ),
        (
            "diag",
            GenSpec::DiagRuns {
                n: n(40_000),
                n_diags: 8,
            }
            .build(2),
        ),
        (
            "graph",
            GenSpec::PowerLaw {
                n: n(30_000),
                avg_deg: 8,
                alpha: 1.7,
            }
            .build(3),
        ),
    ]
}

fn bench_compression(c: &mut Criterion) {
    for (name, csr) in workloads() {
        let x: Vec<f64> = random_vector(csr.n_cols(), 7);
        let mut y = vec![0.0f64; csr.n_rows()];
        let mut group = c.benchmark_group(format!("compression/{name}"));
        group.throughput(Throughput::Bytes(csr.working_set_bytes() as u64));

        group.bench_function(BenchmarkId::new("csr", ""), |b| {
            b.iter(|| csr.spmv_into(&x, &mut y))
        });
        for imp in KernelImpl::ALL {
            let delta = CsrDelta::from_csr(&csr, imp);
            group.bench_function(BenchmarkId::new("csr-delta", imp.to_string()), |b| {
                b.iter(|| delta.spmv_into(&x, &mut y))
            });
        }

        let shape = BlockShape::new(2, 2).unwrap();
        for imp in KernelImpl::ALL {
            let wide = Bcsr::from_csr(&csr, shape, imp);
            let narrow = Bcsr::from_csr_narrow(&csr, shape, imp);
            group.bench_function(BenchmarkId::new("bcsr-2x2", imp.to_string()), |b| {
                b.iter(|| wide.spmv_into(&x, &mut y))
            });
            group.bench_function(BenchmarkId::new("bcsr16-2x2", imp.to_string()), |b| {
                b.iter(|| narrow.spmv_into(&x, &mut y))
            });
        }

        let wide = Bcsd::from_csr(&csr, 4, KernelImpl::Scalar);
        let narrow = Bcsd::from_csr_narrow(&csr, 4, KernelImpl::Scalar);
        group.bench_function(BenchmarkId::new("bcsd-4", "scalar"), |b| {
            b.iter(|| wide.spmv_into(&x, &mut y))
        });
        group.bench_function(BenchmarkId::new("bcsd16-4", "scalar"), |b| {
            b.iter(|| narrow.spmv_into(&x, &mut y))
        });

        let vbl_wide = Vbl::from_csr(&csr, KernelImpl::Scalar);
        let vbl_narrow = Vbl::from_csr_narrow(&csr, KernelImpl::Scalar);
        group.bench_function(BenchmarkId::new("vbl", "scalar"), |b| {
            b.iter(|| vbl_wide.spmv_into(&x, &mut y))
        });
        group.bench_function(BenchmarkId::new("vbl16", "scalar"), |b| {
            b.iter(|| vbl_narrow.spmv_into(&x, &mut y))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_compression
}
criterion_main!(benches);
