//! Criterion benchmarks for the telemetry layer's hot-path cost.
//!
//! Three questions, one group each:
//!
//! * `telemetry/pool` — what do the `pool.epoch` / `pool.strip` spans
//!   add to a pooled SpMV on a ≥20k-row matrix, recording off vs on?
//!   The off/on pair is the acceptance evidence that disabled telemetry
//!   stays within noise (<1%); see `results/telemetry.txt` for recorded
//!   numbers.
//! * `telemetry/record` — the raw per-event cost of the lock-free ring
//!   (span open+drop, counter push), enabled and disabled.
//! * `telemetry/export` — snapshot + chrome-JSON rendering cost per
//!   4096-event ring, off the hot path but worth keeping bounded.
//!
//! Run: `cargo bench -p spmv-bench --bench telemetry`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::{Csr, MatrixShape, SpMv};
use spmv_gen::{random_vector, GenSpec};
use spmv_parallel::{csr_unit_weights, PinPolicy, SpmvPool};

fn workload() -> Csr<f64> {
    GenSpec::Random {
        n: 20_000,
        m: 20_000,
        nnz_per_row: 12,
    }
    .build(42)
}

fn bench_pool_overhead(c: &mut Criterion) {
    let csr = workload();
    let x: Vec<f64> = random_vector(csr.n_cols(), 3);
    let mut y = vec![0.0f64; csr.n_rows()];

    let mut group = c.benchmark_group("telemetry/pool");
    group.throughput(Throughput::Bytes(csr.working_set_bytes() as u64));
    for threads in [2usize, 4] {
        let pool = SpmvPool::from_csr(
            &csr,
            threads,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::None,
        );
        spmv_telemetry::set_enabled(false);
        group.bench_function(BenchmarkId::new("recording-off", threads), |b| {
            b.iter(|| pool.spmv_into(&x, &mut y))
        });
        spmv_telemetry::set_enabled(true);
        group.bench_function(BenchmarkId::new("recording-on", threads), |b| {
            b.iter(|| pool.spmv_into(&x, &mut y))
        });
        spmv_telemetry::set_enabled(false);
        spmv_telemetry::clear();
    }
    group.finish();
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/record");
    spmv_telemetry::set_enabled(false);
    group.bench_function("span-disabled", |b| {
        b.iter(|| spmv_telemetry::span("bench.span"))
    });
    group.bench_function("counter-disabled", |b| {
        b.iter(|| spmv_telemetry::counter("bench.count", 1))
    });
    spmv_telemetry::set_enabled(true);
    group.bench_function("span-enabled", |b| {
        b.iter(|| spmv_telemetry::span("bench.span"))
    });
    group.bench_function("counter-enabled", |b| {
        b.iter(|| spmv_telemetry::counter("bench.count", 1))
    });
    spmv_telemetry::set_enabled(false);
    spmv_telemetry::clear();
    group.finish();
}

fn bench_export(c: &mut Criterion) {
    spmv_telemetry::set_enabled(true);
    for i in 0..4096u64 {
        spmv_telemetry::counter("bench.fill", i as i64);
    }
    spmv_telemetry::set_enabled(false);
    let snap = spmv_telemetry::snapshot();

    let mut group = c.benchmark_group("telemetry/export");
    group.throughput(Throughput::Elements(snap.events.len() as u64));
    group.bench_function("snapshot", |b| b.iter(spmv_telemetry::snapshot));
    group.bench_function("chrome-json", |b| {
        b.iter(|| spmv_telemetry::chrome::chrome_json(&snap))
    });
    group.bench_function("summary", |b| {
        b.iter(|| spmv_telemetry::summary::render(&snap))
    });
    group.finish();
    spmv_telemetry::clear();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_pool_overhead, bench_record, bench_export
}
criterion_main!(benches);
