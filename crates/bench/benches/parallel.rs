//! Criterion benchmarks backing Figure 2: multithreaded SpMV at 1, 2,
//! and 4 threads with nnz-balanced, padding-aware partitioning.
//!
//! Two execution drivers are measured side by side:
//!
//! * `scoped/*` — [`ParallelSpmv`], which spawns scoped threads on every
//!   call (the one-shot fallback), so its per-call time includes a
//!   thread spawn + join per strip;
//! * `pool/*` — [`SpmvPool`], persistent pinned workers driven by an
//!   epoch barrier, the driver used for all reported numbers.
//!
//! The `overhead` group isolates the per-call fixed cost on a small
//! matrix, where the spawn cost dominates the kernel itself.
//!
//! On hosts with fewer hardware threads the oversubscribed points
//! measure scheduling overhead rather than scaling — Figure 2's harness
//! (`--bin figure2`) prints the host parallelism for exactly this
//! reason.
//!
//! Run: `cargo bench -p spmv-bench --bench parallel`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::{Csr, MatrixShape, SpMv};
use spmv_formats::Bcsr;
use spmv_gen::{random_vector, GenSpec};
use spmv_kernels::{BlockShape, KernelImpl};
use spmv_parallel::{
    bcsr_unit_weights, csr_unit_weights, ParallelSpmv, PinPolicy, SpmvPool,
};

fn workload() -> Csr<f64> {
    GenSpec::FemBlocks {
        nodes: 10_000,
        dof: 3,
        neighbors: 9,
    }
    .build(1)
}

/// Small workload for the per-call overhead comparison: the kernel runs
/// in ~10 µs, so any fixed per-call cost is plainly visible.
fn small_workload() -> Csr<f64> {
    GenSpec::Stencil2d { nx: 45, ny: 45 }.build(1)
}

fn bench_parallel_spmv(c: &mut Criterion) {
    let csr = workload();
    let shape = BlockShape::new(3, 2).unwrap();
    let x: Vec<f64> = random_vector(csr.n_cols(), 3);
    let mut y = vec![0.0f64; csr.n_rows()];

    let mut group = c.benchmark_group("parallel/spmv");
    group.throughput(Throughput::Bytes(csr.working_set_bytes() as u64));
    for threads in [1usize, 2, 4] {
        let par_csr =
            ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
        group.bench_function(BenchmarkId::new("scoped-csr", threads), |b| {
            b.iter(|| par_csr.spmv_into(&x, &mut y))
        });
        let pool_csr = SpmvPool::from_csr(
            &csr,
            threads,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Compact,
        );
        group.bench_function(BenchmarkId::new("pool-csr", threads), |b| {
            b.iter(|| pool_csr.spmv_into(&x, &mut y))
        });
        let par_bcsr = ParallelSpmv::from_csr(
            &csr,
            threads,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
        );
        group.bench_function(BenchmarkId::new("scoped-bcsr-3x2", threads), |b| {
            b.iter(|| par_bcsr.spmv_into(&x, &mut y))
        });
        let pool_bcsr = SpmvPool::from_csr(
            &csr,
            threads,
            &bcsr_unit_weights(&csr, shape),
            shape.rows(),
            |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
            PinPolicy::Compact,
        );
        group.bench_function(BenchmarkId::new("pool-bcsr-3x2", threads), |b| {
            b.iter(|| pool_bcsr.spmv_into(&x, &mut y))
        });
    }
    group.finish();
}

/// Per-call fixed cost: scoped spawn/join vs pool epoch barrier on a
/// matrix small enough that the kernel itself is almost free.
fn bench_call_overhead(c: &mut Criterion) {
    let csr = small_workload();
    let x: Vec<f64> = random_vector(csr.n_cols(), 7);
    let mut y = vec![0.0f64; csr.n_rows()];

    let mut group = c.benchmark_group("parallel/overhead");
    for threads in [2usize, 4] {
        let scoped =
            ParallelSpmv::from_csr(&csr, threads, &csr_unit_weights(&csr), 1, Csr::clone);
        group.bench_function(BenchmarkId::new("scoped", threads), |b| {
            b.iter(|| scoped.spmv_into(&x, &mut y))
        });
        let pool = SpmvPool::from_csr(
            &csr,
            threads,
            &csr_unit_weights(&csr),
            1,
            Csr::clone,
            PinPolicy::Compact,
        );
        group.bench_function(BenchmarkId::new("pool", threads), |b| {
            b.iter(|| pool.spmv_into(&x, &mut y))
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let csr = workload();
    let shape = BlockShape::new(3, 2).unwrap();
    let mut group = c.benchmark_group("parallel/partition");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.bench_function("csr_weights", |b| b.iter(|| csr_unit_weights(&csr)));
    group.bench_function("bcsr_weights", |b| {
        b.iter(|| bcsr_unit_weights(&csr, shape))
    });
    let w = bcsr_unit_weights(&csr, shape);
    group.bench_function("partition_4", |b| {
        b.iter(|| spmv_parallel::partition_units(&w, 4))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_parallel_spmv, bench_call_overhead, bench_partitioning
}
criterion_main!(benches);
