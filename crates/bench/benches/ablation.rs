//! Ablation benchmarks for the design choices called out in DESIGN.md §7:
//!
//! 1. aligned vs unaligned BCSR (padding vs uniform kernels);
//! 2. u8 vs (hypothetical) u32 1D-VBL block sizes — measured as the
//!    working-set delta and the real cost of 255-chunking on long runs;
//! 3. padding-aware vs naive nnz load balancing;
//! 4. full-block-only extraction in the decomposed formats (coverage vs
//!    remainder overhead), proxied by BCSR-DEC against BCSR on a
//!    partially blocked matrix;
//! 5. VBR vs 1D-VBL variable blocking.
//!
//! Run: `cargo bench -p spmv-bench --bench ablation`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spmv_core::{Csr, MatrixShape, SpMv};
use spmv_formats::{Bcsr, BcsrDec, Vbl, Vbr};
use spmv_gen::{random_vector, GenSpec};
use spmv_kernels::{BlockShape, KernelImpl};
use spmv_parallel::{bcsr_unit_weights, csr_unit_weights, ParallelSpmv};

/// A matrix whose runs sit at odd offsets: alignment hurts here.
fn misaligned_runs() -> Csr<f64> {
    GenSpec::ClusteredRandom {
        n: 20_000,
        m: 20_000,
        runs_per_row: 6,
        run_len: 5, // odd length at random start: rarely 4-aligned
    }
    .build(7)
}

fn ablation_alignment(c: &mut Criterion) {
    let csr = misaligned_runs();
    let shape = BlockShape::new(1, 4).unwrap();
    let x: Vec<f64> = random_vector(csr.n_cols(), 1);
    let mut y = vec![0.0f64; csr.n_rows()];
    let aligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, true);
    let unaligned = Bcsr::from_csr_with(&csr, shape, KernelImpl::Scalar, false);
    println!(
        "[ablation/alignment] padding: aligned {} vs unaligned {} (blocks {} vs {})",
        aligned.padding(),
        unaligned.padding(),
        aligned.n_blocks(),
        unaligned.n_blocks()
    );
    let mut group = c.benchmark_group("ablation/alignment-1x4");
    group.bench_function("aligned", |b| b.iter(|| aligned.spmv_into(&x, &mut y)));
    group.bench_function("unaligned", |b| b.iter(|| unaligned.spmv_into(&x, &mut y)));
    group.finish();
}

fn ablation_vbl_chunking(c: &mut Criterion) {
    // Long dense rows force 255-chunking; measure its cost and report
    // the byte saving of u8 sizes over a u32 alternative.
    let csr = GenSpec::ClusteredRandom {
        n: 400,
        m: 60_000,
        runs_per_row: 2,
        run_len: 1200, // several 255-chunks per run
    }
    .build(3);
    let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
    let u32_extra = 3 * vbl.n_blocks(); // u32 sizes would add 3 bytes/block
    println!(
        "[ablation/vbl] {} blocks (mean len {:.1}); u8 sizes save {} bytes vs u32",
        vbl.n_blocks(),
        vbl.avg_block_len(),
        u32_extra
    );
    let x: Vec<f64> = random_vector(csr.n_cols(), 2);
    let mut y = vec![0.0f64; csr.n_rows()];
    let mut group = c.benchmark_group("ablation/vbl-chunking");
    for imp in KernelImpl::ALL {
        let mut v = vbl.clone();
        v.set_kernel_impl(imp);
        group.bench_function(BenchmarkId::new("long-runs", imp.to_string()), |b| {
            b.iter(|| v.spmv_into(&x, &mut y))
        });
    }
    group.finish();
}

fn ablation_load_balance(c: &mut Criterion) {
    // A skewed matrix (power-law): padding-aware balanced strips vs a
    // naive equal-row split.
    let csr = GenSpec::PowerLaw {
        n: 40_000,
        avg_deg: 8,
        alpha: 1.6,
    }
    .build(5);
    let shape = BlockShape::new(1, 2).unwrap();
    let x: Vec<f64> = random_vector(csr.n_cols(), 4);
    let mut y = vec![0.0f64; csr.n_rows()];
    let balanced = ParallelSpmv::from_csr(
        &csr,
        4,
        &bcsr_unit_weights(&csr, shape),
        shape.rows(),
        |s| Bcsr::from_csr(s, shape, KernelImpl::Scalar),
    );
    // Naive: every unit weighs 1 → equal row counts per strip.
    let naive_weights = vec![1u64; csr.n_rows()];
    let naive = ParallelSpmv::from_csr(&csr, 4, &naive_weights, 1, |s| {
        Bcsr::from_csr(s, shape, KernelImpl::Scalar)
    });
    let mut group = c.benchmark_group("ablation/load-balance-4t");
    group.sample_size(12);
    group.bench_function("padding-aware", |b| {
        b.iter(|| balanced.spmv_into(&x, &mut y))
    });
    group.bench_function("equal-rows", |b| b.iter(|| naive.spmv_into(&x, &mut y)));
    group.finish();

    let _ = csr_unit_weights(&csr); // exercised for parity with the docs
}

fn ablation_dec_threshold(c: &mut Criterion) {
    // Half the nonzeros form perfect 2x2 blocks, half are scatter: BCSR
    // must pad the scatter, BCSR-DEC routes it to the CSR remainder.
    let blocks = GenSpec::FemBlocks {
        nodes: 8_000,
        dof: 2,
        neighbors: 4,
    }
    .build(11);
    let scatter = GenSpec::Random {
        n: 16_000,
        m: 16_000,
        nnz_per_row: 5,
    }
    .build(12);
    let mut coo = spmv_core::Coo::new(16_000, 16_000);
    for (i, j, v) in blocks.iter().chain(scatter.iter()) {
        coo.push(i, j, v).unwrap();
    }
    let csr = Csr::from_coo(&coo);
    let shape = BlockShape::new(2, 2).unwrap();
    let bcsr = Bcsr::from_csr(&csr, shape, KernelImpl::Scalar);
    let dec = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
    println!(
        "[ablation/dec] BCSR pads {} zeros; BCSR-DEC covers {:.0}% in full blocks",
        bcsr.padding(),
        dec.coverage() * 100.0
    );
    let x: Vec<f64> = random_vector(csr.n_cols(), 9);
    let mut y = vec![0.0f64; csr.n_rows()];
    let mut group = c.benchmark_group("ablation/dec-vs-padding-2x2");
    group.bench_function("bcsr", |b| b.iter(|| bcsr.spmv_into(&x, &mut y)));
    group.bench_function("bcsr-dec", |b| b.iter(|| dec.spmv_into(&x, &mut y)));
    group.finish();
}

fn ablation_vbr_vs_vbl(c: &mut Criterion) {
    // A matrix with repeated row patterns (FEM-like): VBR merges them
    // into 2-D blocks, 1D-VBL only sees horizontal runs.
    let csr = GenSpec::FemBlocks {
        nodes: 6_000,
        dof: 3,
        neighbors: 8,
    }
    .build(13);
    let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
    let vbr = Vbr::from_csr(&csr);
    println!(
        "[ablation/vbr] 1D-VBL {} blocks / {} bytes; VBR {} blocks / {} bytes",
        vbl.n_blocks(),
        vbl.matrix_bytes(),
        vbr.n_blocks(),
        vbr.matrix_bytes()
    );
    let x: Vec<f64> = random_vector(csr.n_cols(), 6);
    let mut y = vec![0.0f64; csr.n_rows()];
    let mut group = c.benchmark_group("ablation/variable-blocking");
    group.bench_function("1d-vbl", |b| b.iter(|| vbl.spmv_into(&x, &mut y)));
    group.bench_function("vbr", |b| b.iter(|| vbr.spmv_into(&x, &mut y)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = ablation_alignment, ablation_vbl_chunking, ablation_load_balance,
              ablation_dec_threshold, ablation_vbr_vs_vbl
}
criterion_main!(benches);
