//! Criterion benchmarks of the model machinery itself — the cost a user
//! pays for model-driven selection (Figures 3–4's offline side): the
//! `O(nnz)` structure estimators, single-config prediction, and a full
//! search-space ranking.
//!
//! Run: `cargo bench -p spmv-bench --bench models`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::Csr;
use spmv_formats::stats::{bcsd_stats, bcsr_dec_stats, bcsr_stats, vbl_stats};
use spmv_gen::GenSpec;
use spmv_kernels::BlockShape;
use spmv_model::{rank, Config, KernelProfile, MachineProfile, Model};

fn workload() -> Csr<f64> {
    GenSpec::FemBlocks {
        nodes: 8_000,
        dof: 3,
        neighbors: 9,
    }
    .build(1)
}

fn bench_estimators(c: &mut Criterion) {
    let csr = workload();
    let shape = BlockShape::new(2, 2).unwrap();
    let mut group = c.benchmark_group("model/estimators");
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.bench_function("bcsr_stats_2x2", |b| {
        b.iter(|| bcsr_stats(&csr, shape))
    });
    group.bench_function("bcsr_dec_stats_2x2", |b| {
        b.iter(|| bcsr_dec_stats(&csr, shape))
    });
    group.bench_function("bcsd_stats_4", |b| b.iter(|| bcsd_stats(&csr, 4)));
    group.bench_function("vbl_stats", |b| b.iter(|| vbl_stats(&csr)));
    group.finish();
}

fn bench_prediction_and_selection(c: &mut Criterion) {
    let csr = workload();
    let machine = MachineProfile::paper_testbed();
    let profile = KernelProfile::proportional(1e-9, 0.5);
    let configs = Config::enumerate(true);

    let mut group = c.benchmark_group("model/selection");
    group.bench_function("predict_one_config", |b| {
        let config = configs[1];
        let stats = config.substats(&csr);
        b.iter(|| Model::Overlap.predict(&stats, &machine, &profile))
    });
    for model in Model::ALL {
        group.bench_function(BenchmarkId::new("rank_full_space", model.label()), |b| {
            b.iter(|| rank(model, &csr, &machine, &profile, &configs))
        });
    }
    group.finish();
}

fn bench_construction_vs_estimation(c: &mut Criterion) {
    // The estimators' reason to exist: materializing a format costs far
    // more than estimating its statistics.
    let csr = workload();
    let shape = BlockShape::new(2, 2).unwrap();
    let mut group = c.benchmark_group("model/estimate_vs_build");
    group.sample_size(10);
    group.bench_function("estimate_bcsr", |b| b.iter(|| bcsr_stats(&csr, shape)));
    group.bench_function("build_bcsr", |b| {
        b.iter(|| spmv_formats::Bcsr::from_csr(&csr, shape, spmv_kernels::KernelImpl::Scalar))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimators, bench_prediction_and_selection, bench_construction_vs_estimation
}
criterion_main!(benches);
