//! Criterion benchmarks backing Tables II/III: SpMV throughput of every
//! storage format on representative suite archetypes.
//!
//! Run: `cargo bench -p spmv-bench --bench formats`
//! (set `SPMV_BENCH_SCALE` to grow the matrices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmv_core::{Csr, MatrixShape, SpMv};
use spmv_formats::{Bcsd, BcsdDec, Bcsr, BcsrDec, Vbl, Vbr};
use spmv_gen::{random_vector, GenSpec};
use spmv_kernels::{BlockShape, KernelImpl};

fn scale() -> f64 {
    std::env::var("SPMV_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

fn workloads() -> Vec<(&'static str, Csr<f64>)> {
    let s = scale();
    let n = |base: usize| (base as f64 * s) as usize;
    vec![
        (
            "fem3dof",
            GenSpec::FemBlocks {
                nodes: n(4000),
                dof: 3,
                neighbors: 9,
            }
            .build(1),
        ),
        (
            "diag",
            GenSpec::DiagRuns {
                n: n(40_000),
                n_diags: 8,
            }
            .build(2),
        ),
        (
            "graph",
            GenSpec::PowerLaw {
                n: n(30_000),
                avg_deg: 8,
                alpha: 1.7,
            }
            .build(3),
        ),
        (
            "stencil3d",
            GenSpec::Stencil3d {
                nx: n(28).max(4),
                ny: 28,
                nz: 28,
            }
            .build(4),
        ),
    ]
}

fn bench_formats(c: &mut Criterion) {
    for (name, csr) in workloads() {
        let x: Vec<f64> = random_vector(csr.n_cols(), 7);
        let mut y = vec![0.0f64; csr.n_rows()];
        let mut group = c.benchmark_group(format!("spmv/{name}"));
        group.throughput(Throughput::Bytes(csr.working_set_bytes() as u64));

        group.bench_function(BenchmarkId::new("csr", ""), |b| {
            b.iter(|| csr.spmv_into(&x, &mut y))
        });

        let shape = BlockShape::new(2, 2).unwrap();
        for imp in KernelImpl::ALL {
            let bcsr = Bcsr::from_csr(&csr, shape, imp);
            group.bench_function(BenchmarkId::new("bcsr-2x2", imp.to_string()), |b| {
                b.iter(|| bcsr.spmv_into(&x, &mut y))
            });
        }
        let bcsr13 = Bcsr::from_csr(&csr, BlockShape::new(1, 3).unwrap(), KernelImpl::Scalar);
        group.bench_function(BenchmarkId::new("bcsr-1x3", "scalar"), |b| {
            b.iter(|| bcsr13.spmv_into(&x, &mut y))
        });
        let dec = BcsrDec::from_csr(&csr, shape, KernelImpl::Scalar);
        group.bench_function(BenchmarkId::new("bcsr-dec-2x2", "scalar"), |b| {
            b.iter(|| dec.spmv_into(&x, &mut y))
        });
        for imp in KernelImpl::ALL {
            let bcsd = Bcsd::from_csr(&csr, 4, imp);
            group.bench_function(BenchmarkId::new("bcsd-4", imp.to_string()), |b| {
                b.iter(|| bcsd.spmv_into(&x, &mut y))
            });
        }
        let bcsd_dec = BcsdDec::from_csr(&csr, 4, KernelImpl::Scalar);
        group.bench_function(BenchmarkId::new("bcsd-dec-4", "scalar"), |b| {
            b.iter(|| bcsd_dec.spmv_into(&x, &mut y))
        });
        let vbl = Vbl::from_csr(&csr, KernelImpl::Scalar);
        group.bench_function(BenchmarkId::new("vbl", "scalar"), |b| {
            b.iter(|| vbl.spmv_into(&x, &mut y))
        });
        let vbr = Vbr::from_csr(&csr);
        group.bench_function(BenchmarkId::new("vbr", ""), |b| {
            b.iter(|| vbr.spmv_into(&x, &mut y))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_formats
}
criterion_main!(benches);
