//! Latency-aware prediction — the paper's first future-work direction.
//!
//! All three §IV models "ignore memory latencies, which means that they
//! actually ignore the cache misses due to the irregular accesses on the
//! input vector"; §V-B then identifies four matrices where exactly those
//! misses dominate and every model under-predicts. The paper's §VI
//! proposes extending the models "to also account for memory latencies"
//! — this module is that extension:
//!
//! * [`measure_latency`] — a pointer-chase microbenchmark measuring the
//!   average dependent-load latency at a given footprint (the analogue
//!   of the STREAM triad for the latency axis);
//! * [`input_vector_miss_estimate`] — a static count of input-vector
//!   accesses whose column distance from the previous access in the row
//!   exceeds the prefetcher window, scaled by the probability that `x`
//!   does not fit in cache;
//! * [`predict_overlap_lat`] — `t = t_OVERLAP + misses * latency`,
//!   equation (3) plus the latency term the paper left to future work.

use crate::config::Config;
use crate::machine::MachineProfile;
use crate::models::Model;
use crate::profile::KernelProfile;
use crate::timing;
use spmv_core::{Csr, MatrixShape, Scalar};

/// Measured memory-latency characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Average seconds per dependent load at the probed footprint.
    pub load_latency: f64,
    /// The footprint the chase covered, bytes.
    pub footprint: usize,
}

/// Pointer-chase latency measurement: a random cyclic permutation is
/// walked link by link, so every load depends on the previous one and
/// neither the out-of-order core nor the prefetcher can overlap them.
pub fn measure_latency(footprint_bytes: usize, min_time: f64) -> LatencyProfile {
    let n = (footprint_bytes / core::mem::size_of::<usize>()).max(16);
    // Sattolo's algorithm: a single cycle covering all n slots, with a
    // deterministic xorshift so runs are reproducible.
    let mut next: Vec<usize> = (0..n).collect();
    let mut state = 0x2545F491_4F6CDD1Du64;
    let mut rand = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    for i in (1..n).rev() {
        let j = rand(i);
        next.swap(i, j);
    }
    let mut pos = 0usize;
    let hops_per_call = n.max(1024);
    let secs = timing::measure(
        || {
            let mut p = pos;
            for _ in 0..hops_per_call {
                p = next[p];
            }
            pos = std::hint::black_box(p);
        },
        min_time,
        3,
    );
    LatencyProfile {
        load_latency: secs / hops_per_call as f64,
        footprint: footprint_bytes,
    }
}

/// Estimates the number of input-vector cache misses of one SpMV.
///
/// An access is a miss candidate when its column is more than `window`
/// entries after the previous nonzero of the row (a stride prefetcher
/// covers anything closer). Candidates only miss if `x` exceeds the
/// cache, so the count is scaled by the excess fraction
/// `max(0, 1 - llc/x_bytes)` — for an in-cache input vector the estimate
/// is zero and the extension degenerates to plain OVERLAP.
pub fn input_vector_miss_estimate<T: Scalar>(
    csr: &Csr<T>,
    machine: &MachineProfile,
    window: usize,
) -> f64 {
    let x_bytes = csr.n_cols() * T::BYTES;
    if x_bytes == 0 {
        return 0.0;
    }
    let out_of_cache = (1.0 - machine.llc_bytes as f64 / x_bytes as f64).max(0.0);
    if out_of_cache == 0.0 {
        return 0.0;
    }
    let mut candidates = 0usize;
    for i in 0..csr.n_rows() {
        let (cols, _) = csr.row(i);
        let mut prev: Option<u32> = None;
        for &c in cols {
            match prev {
                Some(p) if (c.saturating_sub(p) as usize) <= window => {}
                _ => candidates += 1,
            }
            prev = Some(c);
        }
    }
    candidates as f64 * out_of_cache
}

/// OVERLAP plus the latency term: `t = t_OVERLAP + misses * load_latency`.
pub fn predict_overlap_lat<T: Scalar>(
    csr: &Csr<T>,
    config: &Config,
    machine: &MachineProfile,
    profile: &KernelProfile,
    latency: &LatencyProfile,
) -> f64 {
    let base = Model::Overlap.predict(&config.substats(csr), machine, profile);
    // Decomposed configurations traverse x once per submatrix; the miss
    // estimate is per traversal, and `substats` has one entry each.
    let traversals = config.substats(csr).len() as f64;
    let misses = input_vector_miss_estimate(csr, machine, 8);
    base + traversals * misses * latency.load_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_gen::GenSpec;

    fn machine_small_cache() -> MachineProfile {
        MachineProfile {
            bandwidth: 4e9,
            l1_bytes: 32 * 1024,
            llc_bytes: 64 * 1024, // tiny LLC so x spills in tests
        }
    }

    #[test]
    fn chase_latency_is_positive_and_reproducible_order() {
        let a = measure_latency(1 << 14, 1e-3);
        assert!(a.load_latency > 0.0);
        assert!(a.load_latency < 1e-5, "absurd latency {}", a.load_latency);
    }

    #[test]
    fn in_cache_vectors_add_nothing() {
        let csr = GenSpec::Random {
            n: 100,
            m: 100,
            nnz_per_row: 4,
        }
        .build(1);
        let machine = MachineProfile::paper_testbed(); // 4 MiB LLC >> x
        assert_eq!(input_vector_miss_estimate(&csr, &machine, 8), 0.0);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let lat = LatencyProfile {
            load_latency: 1e-7,
            footprint: 1 << 20,
        };
        let cfg = Config::CSR;
        let base = Model::Overlap.predict(&cfg.substats(&csr), &machine, &profile);
        let ext = predict_overlap_lat(&csr, &cfg, &machine, &profile, &lat);
        assert_eq!(base, ext);
    }

    #[test]
    fn irregular_matrices_get_a_latency_penalty() {
        let scatter = GenSpec::Random {
            n: 2_000,
            m: 20_000,
            nnz_per_row: 4,
        }
        .build(2);
        let machine = machine_small_cache();
        let misses = input_vector_miss_estimate(&scatter, &machine, 8);
        assert!(misses > 0.5 * scatter.nnz() as f64 * 0.5, "misses = {misses}");
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let lat = LatencyProfile {
            load_latency: 1e-7,
            footprint: 1 << 20,
        };
        let cfg = Config::CSR;
        let base = Model::Overlap.predict(&cfg.substats(&scatter), &machine, &profile);
        let ext = predict_overlap_lat(&scatter, &cfg, &machine, &profile, &lat);
        assert!(ext > base, "latency term must be positive here");
    }

    #[test]
    fn dense_runs_stay_cheap() {
        // Long runs: only the first access of each run is a candidate.
        let runs = GenSpec::ClusteredRandom {
            n: 500,
            m: 50_000,
            runs_per_row: 2,
            run_len: 40,
        }
        .build(3);
        let machine = machine_small_cache();
        let misses = input_vector_miss_estimate(&runs, &machine, 8);
        // ~2 candidates per row out of ~80 accesses.
        assert!(
            misses < 0.1 * runs.nnz() as f64,
            "runs should amortize misses, got {misses}"
        );
    }

    #[test]
    fn ranking_flips_toward_regular_formats() {
        // Two matrices with identical nnz but different regularity: the
        // latency-aware predictor must separate them while plain OVERLAP
        // (by construction, same ws and nb) cannot.
        let machine = machine_small_cache();
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let lat = LatencyProfile {
            load_latency: 2e-7,
            footprint: 1 << 20,
        };
        let regular = GenSpec::ClusteredRandom {
            n: 500,
            m: 20_000,
            runs_per_row: 1,
            run_len: 16,
        }
        .build(4);
        let irregular = GenSpec::Random {
            n: 500,
            m: 20_000,
            nnz_per_row: 16,
        }
        .build(4);
        let cfg = Config::CSR;
        let t_reg = predict_overlap_lat(&regular, &cfg, &machine, &profile, &lat);
        let t_irr = predict_overlap_lat(&irregular, &cfg, &machine, &profile, &lat);
        assert!(
            t_irr > t_reg,
            "irregular {t_irr} should be predicted slower than regular {t_reg}"
        );
    }
}
