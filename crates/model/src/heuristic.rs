//! The Vuduc/Buttari BCSR fill heuristic — the related-work baseline.
//!
//! "Vuduc et al. \[16\] and Buttari et al. \[3\] propose a simple heuristic
//! that accounts for the computational part of BCSR by estimating the
//! padding of blocks and by profiling a dense matrix, but it is
//! constrained to the BCSR format only" (§I). The paper declines a
//! direct comparison because the heuristic is less general than its
//! models (§IV); it is implemented here so that the comparison is
//! available anyway.
//!
//! The heuristic picks the BCSR shape maximizing
//! `perf_dense(r, c) / fill(r, c)`, where `perf_dense` is the measured
//! SpMV rate (nonzeros per second) of a dense matrix stored as `r x c`
//! BCSR, and `fill >= 1` is the ratio of stored values (with padding) to
//! true nonzeros of the target matrix.

use crate::machine::MachineProfile;
use crate::timing::measure_spmv;
use spmv_core::{Csr, DenseMatrix, Scalar};
use spmv_formats::{bcsr_stats, Bcsr};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{BlockShape, KernelImpl};
use std::collections::HashMap;

/// Measured dense-matrix SpMV rates per (shape, implementation), in
/// nonzeros per second.
#[derive(Debug, Clone, Default)]
pub struct DenseProfile {
    rates: HashMap<(BlockShape, KernelImpl), f64>,
}

impl DenseProfile {
    /// The measured dense rate for a configuration.
    pub fn rate(&self, shape: BlockShape, imp: KernelImpl) -> Option<f64> {
        self.rates.get(&(shape, imp)).copied()
    }

    /// Inserts a rate (exposed for synthetic test profiles).
    pub fn set(&mut self, shape: BlockShape, imp: KernelImpl, rate: f64) {
        self.rates.insert((shape, imp), rate);
    }

    /// Number of profiled configurations.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether no configuration was profiled.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

/// Profiles a dense matrix in every BCSR shape and implementation, as
/// the heuristic prescribes. The dense side length is derived from the
/// machine's LLC (one quarter of it), so the measurement reflects the
/// streaming regime; override with `side` for tests.
pub fn profile_dense<T: SimdScalar>(
    machine: &MachineProfile,
    side: Option<usize>,
    min_time: f64,
) -> DenseProfile {
    let n = side.unwrap_or_else(|| {
        let target = machine.llc_bytes / 4 / T::BYTES;
        ((target as f64).sqrt() as usize / 8 * 8).clamp(64, 4096)
    });
    let dense = Csr::from_dense(&DenseMatrix::<T>::profiling(n, n));
    let x: Vec<T> = (0..n).map(|i| T::from_f64(1.0 + (i % 3) as f64)).collect();
    let mut out = DenseProfile::default();
    for shape in BlockShape::search_space() {
        let mut bcsr = Bcsr::from_csr(&dense, shape, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            bcsr.set_kernel_impl(imp);
            let secs = measure_spmv(&bcsr, &x, min_time, 2);
            out.set(shape, imp, dense.nnz() as f64 / secs);
        }
    }
    out
}

/// The heuristic's selection for `csr`: the `(shape, imp)` maximizing
/// `rate_dense / fill`, together with that score (estimated nonzeros per
/// second on the target matrix).
pub fn select_bcsr_shape<T: Scalar>(
    csr: &Csr<T>,
    dense: &DenseProfile,
    include_simd: bool,
) -> (BlockShape, KernelImpl, f64) {
    assert!(!dense.is_empty(), "dense profile required");
    let nnz = csr.nnz().max(1) as f64;
    let mut best: Option<(BlockShape, KernelImpl, f64)> = None;
    for shape in BlockShape::search_space() {
        let stats = bcsr_stats(csr, shape);
        let fill = stats.stored as f64 / nnz;
        for imp in KernelImpl::ALL {
            if imp == KernelImpl::Simd && !include_simd {
                continue;
            }
            let Some(rate) = dense.rate(shape, imp) else {
                continue;
            };
            let score = rate / fill;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((shape, imp, score));
            }
        }
    }
    best.expect("at least one profiled shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_gen::GenSpec;

    /// A synthetic dense profile where the rate grows with block size —
    /// the typical shape of real dense profiles (bigger blocks, fewer
    /// loop overheads).
    fn synthetic_profile() -> DenseProfile {
        let mut p = DenseProfile::default();
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let base = 1e9 * (1.0 + 0.1 * shape.elems() as f64);
                let simd_boost = if imp == KernelImpl::Simd { 1.2 } else { 1.0 };
                p.set(shape, imp, base * simd_boost);
            }
        }
        p
    }

    #[test]
    fn pure_block_matrix_gets_a_matching_shape() {
        // 2x2-block matrix: 2x2 tiles with fill 1.0; larger shapes pad.
        let mut coo = spmv_core::Coo::new(64, 64);
        for bi in 0..32 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let (shape, imp, _) = select_bcsr_shape(&csr, &synthetic_profile(), true);
        // Fill of 2x2 is 1.0; fill of e.g. 2x4 is 2.0, which cancels its
        // higher dense rate. The winner must tile without padding.
        let stats = bcsr_stats(&csr, shape);
        assert_eq!(stats.stored, csr.nnz(), "winner {shape} must not pad");
        assert_eq!(imp, KernelImpl::Simd, "synthetic profile favors simd");
    }

    #[test]
    fn scatter_prefers_small_blocks() {
        let csr = GenSpec::Random {
            n: 300,
            m: 300,
            nnz_per_row: 2,
        }
        .build(1);
        let (shape, _, _) = select_bcsr_shape(&csr, &synthetic_profile(), false);
        // On isolated nonzeros, fill ~ r*c, which outweighs the mild rate
        // growth; the heuristic must stay at small blocks.
        assert!(shape.elems() <= 2, "scatter picked {shape}");
    }

    #[test]
    fn scalar_only_mode_never_picks_simd() {
        let csr = GenSpec::Stencil2d { nx: 12, ny: 12 }.build(0);
        let (_, imp, _) = select_bcsr_shape(&csr, &synthetic_profile(), false);
        assert_eq!(imp, KernelImpl::Scalar);
    }

    #[test]
    fn real_dense_profiling_produces_full_coverage() {
        let machine = MachineProfile::paper_testbed();
        let p = profile_dense::<f32>(&machine, Some(64), 2e-4);
        assert_eq!(p.len(), 19 * 2);
        for shape in BlockShape::search_space() {
            assert!(p.rate(shape, KernelImpl::Scalar).unwrap() > 0.0);
        }
    }
}
