//! Profile persistence: save and reload a machine calibration.
//!
//! Bandwidth measurement and kernel profiling take seconds to minutes;
//! they depend only on the machine and the precision, not on the matrix.
//! This module stores a calibration as a small, versioned, line-oriented
//! text file so repeated harness runs (and the `spmv-tune` CLI) can skip
//! recalibration.
//!
//! Format (one record per line, whitespace-separated):
//!
//! ```text
//! blocked-spmv-profile v1
//! machine <bandwidth> <l1_bytes> <llc_bytes>
//! csr <t_b> <nof>
//! bcsr <r> <c> <scalar|simd> <t_b> <nof>
//! bcsd <b> <scalar|simd> <t_b> <nof>
//! csrdelta <scalar|simd> <t_b> <nof>
//! bcsrmasked <r> <c> <scalar|simd> <t_b> <nof>
//! bcsdmasked <b> <scalar|simd> <t_b> <nof>
//! sell <c> <scalar|simd> <t_b> <nof>
//! ```

use crate::config::KernelKey;
use crate::machine::MachineProfile;
use crate::profile::{BlockTimes, KernelProfile};
use spmv_core::{Error, Result};
use spmv_kernels::{BlockShape, KernelImpl};
use std::io::{BufRead, Write};
use std::path::Path;

const MAGIC: &str = "blocked-spmv-profile v1";

fn imp_label(imp: KernelImpl) -> &'static str {
    match imp {
        KernelImpl::Scalar => "scalar",
        KernelImpl::Simd => "simd",
    }
}

fn parse_imp(s: &str) -> Result<KernelImpl> {
    match s {
        "scalar" => Ok(KernelImpl::Scalar),
        "simd" => Ok(KernelImpl::Simd),
        other => Err(Error::InvalidStructure(format!(
            "unknown kernel implementation `{other}`"
        ))),
    }
}

/// Serializes a calibration to any writer.
pub fn write_profile<W: Write>(
    machine: &MachineProfile,
    profile: &KernelProfile,
    mut w: W,
) -> std::io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(
        w,
        "machine {:e} {} {}",
        machine.bandwidth, machine.l1_bytes, machine.llc_bytes
    )?;
    // Deterministic order for reproducible files.
    let mut entries: Vec<(&KernelKey, &BlockTimes)> = profile.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    for (key, times) in entries {
        match *key {
            KernelKey::Csr => writeln!(w, "csr {:e} {:e}", times.t_b, times.nof)?,
            KernelKey::Bcsr { shape, imp } => writeln!(
                w,
                "bcsr {} {} {} {:e} {:e}",
                shape.r,
                shape.c,
                imp_label(imp),
                times.t_b,
                times.nof
            )?,
            KernelKey::Bcsd { b, imp } => writeln!(
                w,
                "bcsd {} {} {:e} {:e}",
                b,
                imp_label(imp),
                times.t_b,
                times.nof
            )?,
            KernelKey::CsrDelta { imp } => writeln!(
                w,
                "csrdelta {} {:e} {:e}",
                imp_label(imp),
                times.t_b,
                times.nof
            )?,
            KernelKey::BcsrMasked { shape, imp } => writeln!(
                w,
                "bcsrmasked {} {} {} {:e} {:e}",
                shape.r,
                shape.c,
                imp_label(imp),
                times.t_b,
                times.nof
            )?,
            KernelKey::BcsdMasked { b, imp } => writeln!(
                w,
                "bcsdmasked {} {} {:e} {:e}",
                b,
                imp_label(imp),
                times.t_b,
                times.nof
            )?,
            KernelKey::Sell { c, imp } => writeln!(
                w,
                "sell {} {} {:e} {:e}",
                c,
                imp_label(imp),
                times.t_b,
                times.nof
            )?,
        }
    }
    w.flush()
}

/// Saves a calibration to a file.
pub fn save_profile(
    machine: &MachineProfile,
    profile: &KernelProfile,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    write_profile(machine, profile, std::fs::File::create(path)?)
}

/// Deserializes a calibration from any buffered reader.
pub fn read_profile<R: BufRead>(r: R) -> Result<(MachineProfile, KernelProfile)> {
    let bad = |line: usize, msg: &str| Error::InvalidStructure(format!("line {line}: {msg}"));
    let mut lines = r.lines().enumerate();

    let (_, first) = lines
        .next()
        .ok_or_else(|| bad(1, "empty profile file"))?;
    let first = first.map_err(|e| bad(1, &e.to_string()))?;
    if first.trim() != MAGIC {
        return Err(bad(1, "missing profile header"));
    }

    let mut machine: Option<MachineProfile> = None;
    let mut profile = KernelProfile::default();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.map_err(|e| bad(lineno, &e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let tok: Vec<&str> = t.split_whitespace().collect();
        let parse_f64 = |s: &str| -> Result<f64> {
            s.parse().map_err(|_| bad(lineno, "bad float"))
        };
        match tok[0] {
            "machine" if tok.len() == 4 => {
                machine = Some(MachineProfile {
                    bandwidth: parse_f64(tok[1])?,
                    l1_bytes: tok[2].parse().map_err(|_| bad(lineno, "bad l1"))?,
                    llc_bytes: tok[3].parse().map_err(|_| bad(lineno, "bad llc"))?,
                });
            }
            "csr" if tok.len() == 3 => profile.set(
                KernelKey::Csr,
                BlockTimes {
                    t_b: parse_f64(tok[1])?,
                    nof: parse_f64(tok[2])?,
                },
            ),
            "bcsr" if tok.len() == 6 => {
                let r: usize = tok[1].parse().map_err(|_| bad(lineno, "bad r"))?;
                let c: usize = tok[2].parse().map_err(|_| bad(lineno, "bad c"))?;
                let shape = BlockShape::new(r, c)
                    .map_err(|e| bad(lineno, &e.to_string()))?;
                profile.set(
                    KernelKey::Bcsr {
                        shape,
                        imp: parse_imp(tok[3])?,
                    },
                    BlockTimes {
                        t_b: parse_f64(tok[4])?,
                        nof: parse_f64(tok[5])?,
                    },
                );
            }
            "bcsd" if tok.len() == 5 => {
                let b: u8 = tok[1].parse().map_err(|_| bad(lineno, "bad b"))?;
                if !(1..=8).contains(&b) {
                    return Err(bad(lineno, "bcsd size out of range"));
                }
                profile.set(
                    KernelKey::Bcsd {
                        b,
                        imp: parse_imp(tok[2])?,
                    },
                    BlockTimes {
                        t_b: parse_f64(tok[3])?,
                        nof: parse_f64(tok[4])?,
                    },
                );
            }
            "csrdelta" if tok.len() == 4 => profile.set(
                KernelKey::CsrDelta {
                    imp: parse_imp(tok[1])?,
                },
                BlockTimes {
                    t_b: parse_f64(tok[2])?,
                    nof: parse_f64(tok[3])?,
                },
            ),
            "bcsrmasked" if tok.len() == 6 => {
                let r: usize = tok[1].parse().map_err(|_| bad(lineno, "bad r"))?;
                let c: usize = tok[2].parse().map_err(|_| bad(lineno, "bad c"))?;
                let shape = BlockShape::new(r, c)
                    .map_err(|e| bad(lineno, &e.to_string()))?;
                profile.set(
                    KernelKey::BcsrMasked {
                        shape,
                        imp: parse_imp(tok[3])?,
                    },
                    BlockTimes {
                        t_b: parse_f64(tok[4])?,
                        nof: parse_f64(tok[5])?,
                    },
                );
            }
            "bcsdmasked" if tok.len() == 5 => {
                let b: u8 = tok[1].parse().map_err(|_| bad(lineno, "bad b"))?;
                if !(1..=8).contains(&b) {
                    return Err(bad(lineno, "bcsdmasked size out of range"));
                }
                profile.set(
                    KernelKey::BcsdMasked {
                        b,
                        imp: parse_imp(tok[2])?,
                    },
                    BlockTimes {
                        t_b: parse_f64(tok[3])?,
                        nof: parse_f64(tok[4])?,
                    },
                );
            }
            "sell" if tok.len() == 5 => {
                let c: u8 = tok[1].parse().map_err(|_| bad(lineno, "bad c"))?;
                if !spmv_kernels::SELL_HEIGHTS.contains(&(c as usize)) {
                    return Err(bad(lineno, "sell slice height out of range"));
                }
                profile.set(
                    KernelKey::Sell {
                        c,
                        imp: parse_imp(tok[2])?,
                    },
                    BlockTimes {
                        t_b: parse_f64(tok[3])?,
                        nof: parse_f64(tok[4])?,
                    },
                );
            }
            other => return Err(bad(lineno, &format!("unknown record `{other}`"))),
        }
    }
    let machine = machine.ok_or_else(|| bad(0, "missing machine record"))?;
    Ok((machine, profile))
}

/// Loads a calibration from a file.
pub fn load_profile(path: impl AsRef<Path>) -> Result<(MachineProfile, KernelProfile)> {
    let f = std::fs::File::open(&path)
        .map_err(|e| Error::InvalidStructure(format!("cannot open profile: {e}")))?;
    read_profile(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (MachineProfile, KernelProfile) {
        (
            MachineProfile::paper_testbed(),
            KernelProfile::proportional(1.5e-9, 0.42),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (machine, profile) = sample();
        let mut buf = Vec::new();
        write_profile(&machine, &profile, &mut buf).unwrap();
        let (m2, p2) = read_profile(&buf[..]).unwrap();
        assert_eq!(machine, m2);
        assert_eq!(p2.len(), profile.len());
        for (key, times) in profile.iter() {
            let got = p2.get(*key);
            assert!((got.t_b - times.t_b).abs() < 1e-18, "{key}");
            assert!((got.nof - times.nof).abs() < 1e-12, "{key}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let (machine, profile) = sample();
        let dir = std::env::temp_dir().join("spmv_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calib.txt");
        save_profile(&machine, &profile, &path).unwrap();
        let (m2, p2) = load_profile(&path).unwrap();
        assert_eq!(machine, m2);
        assert_eq!(p2.len(), profile.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_profile("not a profile\n".as_bytes()).is_err());
        let bad_record = format!("{MAGIC}\nmachine 1e9 1 2\nwat 1 2 3\n");
        assert!(read_profile(bad_record.as_bytes()).is_err());
        let no_machine = format!("{MAGIC}\ncsr 1e-9 0.5\n");
        assert!(read_profile(no_machine.as_bytes()).is_err());
        let bad_shape = format!("{MAGIC}\nmachine 1e9 1 2\nbcsr 9 9 scalar 1e-9 0.5\n");
        assert!(read_profile(bad_shape.as_bytes()).is_err());
        let bad_sell = format!("{MAGIC}\nmachine 1e9 1 2\nsell 3 scalar 1e-9 0.5\n");
        assert!(read_profile(bad_sell.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{MAGIC}\n# comment\n\nmachine 2e9 32768 4194304\ncsr 1e-9 0.25\n");
        let (m, p) = read_profile(text.as_bytes()).unwrap();
        assert_eq!(m.bandwidth, 2e9);
        assert_eq!(p.get(KernelKey::Csr).nof, 0.25);
    }
}
