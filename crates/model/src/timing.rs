//! Wall-clock measurement utilities.
//!
//! All measurements in the workspace — kernel profiling for the models,
//! and the experiment harness that regenerates the paper's tables — go
//! through these helpers: adaptive iteration counts so short kernels are
//! timed over a minimum window, and a best-of-batches rule to suppress
//! scheduling noise.

use std::time::Instant;

/// Seconds taken by one invocation of `f`.
pub fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Mean seconds per call of `f`, measured adaptively.
///
/// Iterations are doubled until one batch lasts at least `min_time`
/// seconds; the fastest of `batches` batches is reported (the standard
/// noise-suppression rule: external interference only ever slows a batch
/// down).
pub fn measure<F: FnMut()>(mut f: F, min_time: f64, batches: usize) -> f64 {
    assert!(batches > 0);
    // Find an iteration count that fills the window.
    let mut iters = 1u64;
    loop {
        let t = time_once(|| {
            for _ in 0..iters {
                f();
            }
        });
        if t >= min_time || iters >= 1 << 30 {
            if t >= min_time && iters == 1 && t > 4.0 * min_time {
                // A single call already exceeds the window comfortably.
                return t;
            }
            break;
        }
        // Aim directly for the window with a safety factor.
        let scale = (min_time / t.max(1e-9) * 1.5).max(2.0);
        iters = ((iters as f64) * scale).min(2e9) as u64;
    }
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t = time_once(|| {
            for _ in 0..iters {
                f();
            }
        });
        best = best.min(t / iters as f64);
    }
    best
}

/// Mean seconds per SpMV of `mat` over `x`, with one warm-up pass.
pub fn measure_spmv<T, M>(mat: &M, x: &[T], min_time: f64, batches: usize) -> f64
where
    T: spmv_core::Scalar,
    M: spmv_core::SpMv<T>,
{
    let mut y = vec![T::ZERO; mat.n_rows()];
    mat.spmv_into(x, &mut y); // warm-up: faults pages, fills caches
    let t = measure(|| mat.spmv_into(x, &mut y), min_time, batches);
    // Keep the result observable so the optimizer cannot delete the loop.
    std::hint::black_box(&y);
    t
}

/// Mean seconds per `k`-vector call of `mat` over `x` (which holds `k`
/// concatenated input vectors), with one warm-up pass.
pub fn measure_spmv_multi<T, M>(
    mat: &M,
    x: &[T],
    k: usize,
    min_time: f64,
    batches: usize,
) -> f64
where
    T: spmv_core::Scalar,
    M: spmv_core::SpMvMulti<T>,
{
    let mut y = vec![T::ZERO; mat.n_rows() * k];
    mat.spmv_multi_into(x, &mut y, k); // warm-up: faults pages, fills caches
    let t = measure(|| mat.spmv_multi_into(x, &mut y, k), min_time, batches);
    std::hint::black_box(&y);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_is_positive() {
        let t = time_once(|| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn measure_returns_per_call_time() {
        // A ~50 µs busy loop: per-call time must be well under one batch
        // window.
        let t = measure(
            || {
                std::hint::black_box((0..20_000).fold(0u64, |a, b| a ^ b));
            },
            0.005,
            2,
        );
        assert!(t > 0.0);
        assert!(t < 0.005, "per-call time {t} should be far below the window");
    }

    #[test]
    fn measure_spmv_multi_times_batched_calls() {
        use spmv_core::{Coo, Csr};
        let mut coo = Coo::new(100, 100);
        for i in 0..100 {
            coo.push(i, i, 1.0).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let x = vec![1.0f64; 400];
        let t = measure_spmv_multi(&csr, &x, 4, 0.002, 2);
        assert!(t > 0.0 && t < 0.002);
    }

    #[test]
    fn measure_spmv_matches_direct_timing_order() {
        use spmv_core::{Coo, Csr};
        let mut coo = Coo::new(200, 200);
        for i in 0..200 {
            coo.push(i, i, 1.0).unwrap();
            coo.push(i, (i + 7) % 200, 0.5).unwrap();
        }
        let csr = Csr::from_coo(&coo);
        let x = vec![1.0f64; 200];
        let t = measure_spmv(&csr, &x, 0.002, 2);
        assert!(t > 0.0 && t < 0.002);
    }
}
