//! Kernel profiling: per-block compute times `t_b` and non-overlap
//! factors `nof_b`.
//!
//! The MEMCOMP model's `t_b` is "obtained by profiling the execution of a
//! very small dense matrix, which is stored using every blocking method
//! and block under consideration and fits in the L1 cache of the target
//! machine" (§IV). The OVERLAP model's `nof_b` comes from equation (4),
//! profiling "a large dense matrix that exceeds the highest level of
//! cache". This module is that profiler; a [`KernelProfile`] is computed
//! once per (machine, precision) and reused across every matrix.

use crate::config::KernelKey;
use crate::machine::MachineProfile;
use crate::timing::measure_spmv;
use spmv_core::{Csr, DenseMatrix, Scalar, SpMv};
use spmv_formats::{Bcsd, BcsdMasked, Bcsr, BcsrMasked, CsrDelta, SellCSigma};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{BlockShape, KernelImpl, BCSD_SIZES, SELL_HEIGHTS};
use std::collections::HashMap;

/// Profiled characteristics of one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTimes {
    /// Estimated execution time for a single block, seconds (eq. 2).
    pub t_b: f64,
    /// Non-overlapping factor: the fraction of computation *not* hidden
    /// behind memory transfers (eq. 3–4), clamped to `[0, 1]`.
    pub nof: f64,
}

/// The complete kernel profile for one machine and precision.
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    times: HashMap<KernelKey, BlockTimes>,
}

impl KernelProfile {
    /// Looks up a kernel's profile.
    ///
    /// # Panics
    ///
    /// Panics if the key was never profiled — profiles are built over the
    /// full search space, so this indicates a programming error.
    pub fn get(&self, key: KernelKey) -> BlockTimes {
        *self
            .times
            .get(&key)
            .unwrap_or_else(|| panic!("kernel {key} missing from profile"))
    }

    /// Inserts or replaces one kernel's numbers (used by tests and by
    /// synthetic profiles).
    pub fn set(&mut self, key: KernelKey, times: BlockTimes) {
        self.times.insert(key, times);
    }

    /// Number of profiled kernels.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterates over all profiled kernels.
    pub fn iter(&self) -> impl Iterator<Item = (&KernelKey, &BlockTimes)> {
        self.times.iter()
    }

    /// A synthetic profile where each block costs time proportional to
    /// its element count (`t_b = elems * per_elem`), with a uniform
    /// `nof`. This is the "ideal machine" profile: it isolates the
    /// models' structural reasoning (working sets, block counts, padding)
    /// from kernel-quality noise, and is what deterministic tests use.
    pub fn proportional(per_elem: f64, nof: f64) -> Self {
        let mut p = Self::uniform(0.0, nof);
        let keys: Vec<KernelKey> = p.times.keys().copied().collect();
        for key in keys {
            p.set(
                key,
                BlockTimes {
                    t_b: key.block_elems() as f64 * per_elem,
                    nof,
                },
            );
        }
        p
    }

    /// A synthetic profile for tests: every kernel gets the same `t_b`
    /// and `nof`.
    pub fn uniform(t_b: f64, nof: f64) -> Self {
        let mut p = KernelProfile::default();
        let times = BlockTimes { t_b, nof };
        p.set(KernelKey::Csr, times);
        for imp in KernelImpl::ALL {
            p.set(KernelKey::CsrDelta { imp }, times);
        }
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                p.set(KernelKey::Bcsr { shape, imp }, times);
                p.set(KernelKey::BcsrMasked { shape, imp }, times);
            }
        }
        for b in BCSD_SIZES {
            for imp in KernelImpl::ALL {
                p.set(KernelKey::Bcsd { b: b as u8, imp }, times);
                p.set(KernelKey::BcsdMasked { b: b as u8, imp }, times);
            }
        }
        for c in SELL_HEIGHTS {
            for imp in KernelImpl::ALL {
                p.set(KernelKey::Sell { c: c as u8, imp }, times);
            }
        }
        p
    }
}

/// Sizing and measurement knobs for [`profile_kernels`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileOptions {
    /// Target byte footprint of the L1-resident profiling matrix
    /// (`0` = half the machine's L1).
    pub small_bytes: usize,
    /// Target byte footprint of the out-of-cache profiling matrix
    /// (`0` = twice the machine's LLC, capped at 64 MiB).
    pub large_bytes: usize,
    /// Minimum timing window per measurement, seconds.
    pub min_time: f64,
    /// Timing batches (best-of).
    pub batches: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            small_bytes: 0,
            large_bytes: 0,
            min_time: 3e-3,
            batches: 3,
        }
    }
}

/// Dense square profiling matrix with side rounded down to a multiple of
/// 8 (so every block shape tiles it exactly).
fn profiling_matrix<T: Scalar>(target_bytes: usize) -> Csr<T> {
    let n = ((target_bytes / T::BYTES) as f64).sqrt() as usize;
    let n = (n / 8 * 8).max(16);
    Csr::from_dense(&DenseMatrix::<T>::profiling(n, n))
}

/// Re-measures only `keys` — the bounded re-profile an online tuner runs
/// when residuals implicate specific kernels, instead of the full
/// search-space sweep of [`profile_kernels`].
///
/// Each requested key gets the same two measurements the full profiler
/// takes (`t_b` on an L1-resident dense matrix, `nof` on an out-of-cache
/// one); duplicate keys are measured once. Cost scales with
/// `keys.len()`, not the search-space size.
pub fn profile_keys<T: SimdScalar>(
    machine: &MachineProfile,
    opts: &ProfileOptions,
    keys: &[KernelKey],
) -> Vec<(KernelKey, BlockTimes)> {
    let _span = spmv_telemetry::span_with("model.profile.keys", keys.len() as u64);
    let mut todo: Vec<KernelKey> = keys.to_vec();
    todo.sort_unstable_by_key(|k| format!("{k}"));
    todo.dedup();
    if todo.is_empty() {
        return Vec::new();
    }
    let small_bytes = if opts.small_bytes == 0 {
        machine.l1_bytes / 2
    } else {
        opts.small_bytes
    };
    let large_bytes = if opts.large_bytes == 0 {
        (machine.llc_bytes * 2).min(64 << 20)
    } else {
        opts.large_bytes
    };
    let small = profiling_matrix::<T>(small_bytes);
    let large = profiling_matrix::<T>(large_bytes);
    let x_small: Vec<T> = (0..spmv_core::MatrixShape::n_cols(&small))
        .map(|i| T::from_f64(1.0 + (i % 3) as f64))
        .collect();
    let x_large: Vec<T> = (0..spmv_core::MatrixShape::n_cols(&large))
        .map(|i| T::from_f64(1.0 + (i % 3) as f64))
        .collect();
    let nof_of = |t_real: f64, ws_bytes: usize, nb: usize, t_b: f64| -> f64 {
        let t_mem = ws_bytes as f64 / machine.bandwidth;
        if nb == 0 || t_b <= 0.0 {
            return 1.0;
        }
        ((t_real - t_mem) / (nb as f64 * t_b)).clamp(0.0, 1.0)
    };
    let mut out = Vec::with_capacity(todo.len());
    for key in todo {
        let times = match key {
            KernelKey::Csr => {
                let t_small = measure_spmv(&small, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small.nnz().max(1) as f64;
                let t_large = measure_spmv(&large, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(t_large, large.working_set_bytes(), large.nnz(), t_b);
                BlockTimes { t_b, nof }
            }
            KernelKey::CsrDelta { imp } => {
                let small_d = CsrDelta::from_csr(&small, imp);
                let large_d = CsrDelta::from_csr(&large, imp);
                let t_small = measure_spmv(&small_d, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small_d.nnz().max(1) as f64;
                let t_large = measure_spmv(&large_d, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(t_large, large_d.working_set_bytes(), large_d.nnz(), t_b);
                BlockTimes { t_b, nof }
            }
            KernelKey::Bcsr { shape, imp } => {
                let small_b = Bcsr::from_csr(&small, shape, imp);
                let large_b = Bcsr::from_csr(&large, shape, imp);
                let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small_b.n_blocks().max(1) as f64;
                let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(
                    t_large,
                    large_b.working_set_bytes(),
                    large_b.n_blocks(),
                    t_b,
                );
                BlockTimes { t_b, nof }
            }
            KernelKey::Bcsd { b, imp } => {
                let small_b = Bcsd::from_csr(&small, b as usize, imp);
                let large_b = Bcsd::from_csr(&large, b as usize, imp);
                let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small_b.n_blocks().max(1) as f64;
                let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(
                    t_large,
                    large_b.working_set_bytes(),
                    large_b.n_blocks(),
                    t_b,
                );
                BlockTimes { t_b, nof }
            }
            KernelKey::BcsrMasked { shape, imp } => {
                let small_b = BcsrMasked::from_csr(&small, shape, imp);
                let large_b = BcsrMasked::from_csr(&large, shape, imp);
                let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small_b.n_blocks().max(1) as f64;
                let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(
                    t_large,
                    large_b.working_set_bytes(),
                    large_b.n_blocks(),
                    t_b,
                );
                BlockTimes { t_b, nof }
            }
            KernelKey::BcsdMasked { b, imp } => {
                let small_b = BcsdMasked::from_csr(&small, b as usize, imp);
                let large_b = BcsdMasked::from_csr(&large, b as usize, imp);
                let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small_b.n_blocks().max(1) as f64;
                let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(
                    t_large,
                    large_b.working_set_bytes(),
                    large_b.n_blocks(),
                    t_b,
                );
                BlockTimes { t_b, nof }
            }
            // Dense rows all share one length, so σ = 1 (no sorting) is
            // representative of every σ: the slice widths are identical.
            KernelKey::Sell { c, imp } => {
                let small_b = SellCSigma::from_csr(&small, c as usize, 1, imp);
                let large_b = SellCSigma::from_csr(&large, c as usize, 1, imp);
                let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
                let t_b = t_small / small_b.n_blocks().max(1) as f64;
                let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
                let nof = nof_of(
                    t_large,
                    large_b.working_set_bytes(),
                    large_b.n_blocks(),
                    t_b,
                );
                BlockTimes { t_b, nof }
            }
        };
        out.push((key, times));
    }
    out
}

/// Measures `t_b` (L1-resident dense) and `nof` (out-of-cache dense) for
/// every kernel in the search space, both implementations, plus the CSR
/// baseline kernel.
pub fn profile_kernels<T: SimdScalar>(
    machine: &MachineProfile,
    opts: &ProfileOptions,
) -> KernelProfile {
    let _profile_span = spmv_telemetry::span("model.profile");
    let small_bytes = if opts.small_bytes == 0 {
        machine.l1_bytes / 2
    } else {
        opts.small_bytes
    };
    let large_bytes = if opts.large_bytes == 0 {
        // Twice the LLC, capped at 64 MiB: large enough to defeat modest
        // caches, small enough that profiling the full kernel set stays
        // in seconds even on machines with very large last-level caches
        // (where the triad-matched bandwidth keeps the model consistent;
        // DESIGN.md §2).
        (machine.llc_bytes * 2).min(64 << 20)
    } else {
        opts.large_bytes
    };
    let small = profiling_matrix::<T>(small_bytes);
    let large = profiling_matrix::<T>(large_bytes);
    let x_small: Vec<T> = (0..spmv_core::MatrixShape::n_cols(&small))
        .map(|i| T::from_f64(1.0 + (i % 3) as f64))
        .collect();
    let x_large: Vec<T> = (0..spmv_core::MatrixShape::n_cols(&large))
        .map(|i| T::from_f64(1.0 + (i % 3) as f64))
        .collect();

    let mut profile = KernelProfile::default();

    // Shared nof computation (eq. 4): the numerator is the compute time
    // not hidden behind the streaming transfers, the denominator the
    // estimated total compute time.
    let nof_of = |t_real: f64, ws_bytes: usize, nb: usize, t_b: f64| -> f64 {
        let t_mem = ws_bytes as f64 / machine.bandwidth;
        if nb == 0 || t_b <= 0.0 {
            return 1.0;
        }
        ((t_real - t_mem) / (nb as f64 * t_b)).clamp(0.0, 1.0)
    };

    // CSR baseline (degenerate 1x1 blocks, nb = nnz).
    {
        let _s = spmv_telemetry::span("model.profile.csr");
        let t_small = measure_spmv(&small, &x_small, opts.min_time, opts.batches);
        let t_b = t_small / small.nnz() as f64;
        let t_large = measure_spmv(&large, &x_large, opts.min_time, opts.batches);
        let nof = nof_of(t_large, large.working_set_bytes(), large.nnz(), t_b);
        profile.set(KernelKey::Csr, BlockTimes { t_b, nof });
    }

    // CSR-Δ (degenerate 1x1 blocks like CSR, but the decode cost differs
    // between implementations, so both are measured).
    {
        let _s = spmv_telemetry::span("model.profile.csr_delta");
        let mut small_d = CsrDelta::from_csr(&small, KernelImpl::Scalar);
        let mut large_d = CsrDelta::from_csr(&large, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            small_d.set_kernel_impl(imp);
            large_d.set_kernel_impl(imp);
            let t_small = measure_spmv(&small_d, &x_small, opts.min_time, opts.batches);
            let t_b = t_small / small_d.nnz().max(1) as f64;
            let t_large = measure_spmv(&large_d, &x_large, opts.min_time, opts.batches);
            let nof = nof_of(t_large, large_d.working_set_bytes(), large_d.nnz(), t_b);
            profile.set(KernelKey::CsrDelta { imp }, BlockTimes { t_b, nof });
        }
    }

    // BCSR kernels: one construction per shape and size, both
    // implementations measured by switching the kernel in place.
    for shape in BlockShape::search_space() {
        // arg packs the block shape as r*256 + c.
        let _s = spmv_telemetry::span_with(
            "model.profile.bcsr",
            (shape.r as u64) << 8 | shape.c as u64,
        );
        let mut small_b = Bcsr::from_csr(&small, shape, KernelImpl::Scalar);
        let mut large_b = Bcsr::from_csr(&large, shape, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            small_b.set_kernel_impl(imp);
            large_b.set_kernel_impl(imp);
            let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
            let t_b = t_small / small_b.n_blocks().max(1) as f64;
            let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
            let nof = nof_of(
                t_large,
                large_b.working_set_bytes(),
                large_b.n_blocks(),
                t_b,
            );
            profile.set(KernelKey::Bcsr { shape, imp }, BlockTimes { t_b, nof });
        }
    }

    // BCSD kernels.
    for b in BCSD_SIZES {
        let _s = spmv_telemetry::span_with("model.profile.bcsd", b as u64);
        let mut small_b = Bcsd::from_csr(&small, b, KernelImpl::Scalar);
        let mut large_b = Bcsd::from_csr(&large, b, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            small_b.set_kernel_impl(imp);
            large_b.set_kernel_impl(imp);
            let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
            let t_b = t_small / small_b.n_blocks().max(1) as f64;
            let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
            let nof = nof_of(
                t_large,
                large_b.working_set_bytes(),
                large_b.n_blocks(),
                t_b,
            );
            profile.set(
                KernelKey::Bcsd { b: b as u8, imp },
                BlockTimes { t_b, nof },
            );
        }
    }

    // Masked BCSR kernels. The dense profiling matrices have all-ones
    // masks, so these t_b/nof capture the fast-path cost (mask check +
    // direct borrow); the partial-block expansion overhead shows up in
    // the residuals the masked sweep records.
    for shape in BlockShape::search_space() {
        let _s = spmv_telemetry::span_with(
            "model.profile.bcsr_masked",
            (shape.r as u64) << 8 | shape.c as u64,
        );
        let mut small_b = BcsrMasked::from_csr(&small, shape, KernelImpl::Scalar);
        let mut large_b = BcsrMasked::from_csr(&large, shape, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            small_b.set_kernel_impl(imp);
            large_b.set_kernel_impl(imp);
            let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
            let t_b = t_small / small_b.n_blocks().max(1) as f64;
            let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
            let nof = nof_of(
                t_large,
                large_b.working_set_bytes(),
                large_b.n_blocks(),
                t_b,
            );
            profile.set(KernelKey::BcsrMasked { shape, imp }, BlockTimes { t_b, nof });
        }
    }

    // Masked BCSD kernels.
    for b in BCSD_SIZES {
        let _s = spmv_telemetry::span_with("model.profile.bcsd_masked", b as u64);
        let mut small_b = BcsdMasked::from_csr(&small, b, KernelImpl::Scalar);
        let mut large_b = BcsdMasked::from_csr(&large, b, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            small_b.set_kernel_impl(imp);
            large_b.set_kernel_impl(imp);
            let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
            let t_b = t_small / small_b.n_blocks().max(1) as f64;
            let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
            let nof = nof_of(
                t_large,
                large_b.working_set_bytes(),
                large_b.n_blocks(),
                t_b,
            );
            profile.set(
                KernelKey::BcsdMasked { b: b as u8, imp },
                BlockTimes { t_b, nof },
            );
        }
    }

    // SELL slice kernels. Dense rows are uniform, so σ = 1 profiles the
    // same slice widths any σ would produce.
    for c in SELL_HEIGHTS {
        let _s = spmv_telemetry::span_with("model.profile.sell", c as u64);
        let mut small_b = SellCSigma::from_csr(&small, c, 1, KernelImpl::Scalar);
        let mut large_b = SellCSigma::from_csr(&large, c, 1, KernelImpl::Scalar);
        for imp in KernelImpl::ALL {
            small_b.set_kernel_impl(imp);
            large_b.set_kernel_impl(imp);
            let t_small = measure_spmv(&small_b, &x_small, opts.min_time, opts.batches);
            let t_b = t_small / small_b.n_blocks().max(1) as f64;
            let t_large = measure_spmv(&large_b, &x_large, opts.min_time, opts.batches);
            let nof = nof_of(
                t_large,
                large_b.working_set_bytes(),
                large_b.n_blocks(),
                t_b,
            );
            profile.set(
                KernelKey::Sell { c: c as u8, imp },
                BlockTimes { t_b, nof },
            );
        }
    }

    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ProfileOptions {
        ProfileOptions {
            small_bytes: 4 * 1024,
            large_bytes: 32 * 1024,
            min_time: 2e-4,
            batches: 1,
        }
    }

    /// CSR, plus per implementation: CSR-Δ, one padded and one masked
    /// kernel per BCSR shape, one padded and one masked kernel per BCSD
    /// size, and one SELL kernel per slice height. Derived from the
    /// search space, not hardcoded.
    fn expected_profile_len() -> usize {
        let shapes = BlockShape::search_space().len();
        let sizes = BCSD_SIZES.len();
        1 + KernelImpl::ALL.len() * (1 + 2 * (shapes + sizes) + SELL_HEIGHTS.len())
    }

    #[test]
    fn profile_covers_the_whole_search_space() {
        let machine = MachineProfile::paper_testbed();
        let p = profile_kernels::<f64>(&machine, &tiny_opts());
        assert_eq!(p.len(), expected_profile_len());
        let _ = p.get(KernelKey::Csr);
        for imp in KernelImpl::ALL {
            let t = p.get(KernelKey::CsrDelta { imp });
            assert!(t.t_b > 0.0, "csr-delta t_b must be positive");
        }
        for shape in BlockShape::search_space() {
            for imp in KernelImpl::ALL {
                let t = p.get(KernelKey::Bcsr { shape, imp });
                assert!(t.t_b > 0.0, "t_b must be positive for {shape}");
                assert!((0.0..=1.0).contains(&t.nof));
                let tm = p.get(KernelKey::BcsrMasked { shape, imp });
                assert!(tm.t_b > 0.0, "masked t_b must be positive for {shape}");
                assert!((0.0..=1.0).contains(&tm.nof));
            }
        }
        for b in BCSD_SIZES {
            for imp in KernelImpl::ALL {
                let t = p.get(KernelKey::BcsdMasked { b: b as u8, imp });
                assert!(t.t_b > 0.0, "masked t_b must be positive for b={b}");
            }
        }
        for c in SELL_HEIGHTS {
            for imp in KernelImpl::ALL {
                let t = p.get(KernelKey::Sell { c: c as u8, imp });
                assert!(t.t_b > 0.0, "sell t_b must be positive for c={c}");
                assert!((0.0..=1.0).contains(&t.nof));
            }
        }
    }

    #[test]
    fn larger_blocks_take_longer_per_block() {
        // A 1x8 block does 4x the work of a 1x2 block; allow generous
        // measurement slack but demand the ordering. The tiny profiling
        // windows can invert under scheduler noise from the other
        // timing tests in this binary, so retry before declaring a
        // real ordering violation.
        let machine = MachineProfile::paper_testbed();
        let measure = || {
            let p = profile_kernels::<f64>(&machine, &tiny_opts());
            let t_b = |c| {
                p.get(KernelKey::Bcsr {
                    shape: BlockShape::new(1, c).unwrap(),
                    imp: KernelImpl::Scalar,
                })
                .t_b
            };
            (t_b(2), t_b(8))
        };
        let mut last = (0.0, 0.0);
        for _ in 0..3 {
            last = measure();
            if last.1 > last.0 {
                return;
            }
        }
        let (t1, t8) = last;
        panic!("t_b(1x8)={t8} should exceed t_b(1x2)={t1}");
    }

    #[test]
    fn profile_keys_measures_exactly_the_requested_keys() {
        let machine = MachineProfile::paper_testbed();
        let shape = BlockShape::new(2, 2).unwrap();
        let keys = [
            KernelKey::Csr,
            KernelKey::Bcsr {
                shape,
                imp: KernelImpl::Scalar,
            },
            KernelKey::Bcsd {
                b: 4,
                imp: KernelImpl::Simd,
            },
            KernelKey::CsrDelta {
                imp: KernelImpl::Scalar,
            },
            KernelKey::BcsrMasked {
                shape,
                imp: KernelImpl::Scalar,
            },
            KernelKey::BcsdMasked {
                b: 4,
                imp: KernelImpl::Simd,
            },
            KernelKey::Sell {
                c: 4,
                imp: KernelImpl::Simd,
            },
            // Duplicate: measured once.
            KernelKey::Csr,
        ];
        let measured = profile_keys::<f64>(&machine, &tiny_opts(), &keys);
        assert_eq!(measured.len(), 7);
        for (key, times) in &measured {
            assert!(times.t_b > 0.0, "{key}: t_b must be positive");
            assert!((0.0..=1.0).contains(&times.nof), "{key}: nof in [0,1]");
        }
        let csr_rows = measured
            .iter()
            .filter(|(k, _)| *k == KernelKey::Csr)
            .count();
        assert_eq!(csr_rows, 1);
        assert!(profile_keys::<f64>(&machine, &tiny_opts(), &[]).is_empty());
    }

    #[test]
    fn uniform_profile_for_tests() {
        let p = KernelProfile::uniform(1e-9, 0.5);
        assert_eq!(p.len(), expected_profile_len());
        assert_eq!(p.get(KernelKey::Csr).nof, 0.5);
    }

    #[test]
    #[should_panic(expected = "missing from profile")]
    fn missing_key_panics() {
        let p = KernelProfile::default();
        let _ = p.get(KernelKey::Csr);
    }

    #[test]
    fn profiling_matrix_side_is_multiple_of_8() {
        let m: Csr<f64> = profiling_matrix(16 * 1024);
        assert_eq!(spmv_core::MatrixShape::n_rows(&m) % 8, 0);
    }
}
