//! Machine characterization: cache sizes and sustainable memory
//! bandwidth.
//!
//! The models need exactly two machine numbers (§IV): the effective
//! memory bandwidth `BW` — which the paper takes from the STREAM
//! benchmark — and the cache geometry that sizes the two profiling
//! matrices (L1-resident for `t_b`, beyond-LLC for `nof`). Bandwidth is
//! measured here with a STREAM-style triad; cache sizes are read from
//! sysfs where available, with conservative defaults elsewhere.

use crate::timing;

/// The machine numbers consumed by the performance models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// Sustainable memory bandwidth in bytes per second (STREAM triad).
    pub bandwidth: f64,
    /// L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// Last-level cache size in bytes.
    pub llc_bytes: usize,
}

impl MachineProfile {
    /// A fixed profile for tests and examples that must not spend time
    /// measuring: 3.36 GiB/s (the paper testbed's STREAM number), 32 KiB
    /// L1, 4 MiB L2 — the paper's Core 2 Xeon.
    pub fn paper_testbed() -> Self {
        MachineProfile {
            bandwidth: 3.36 * (1u64 << 30) as f64,
            l1_bytes: 32 * 1024,
            llc_bytes: 4 * 1024 * 1024,
        }
    }

    /// Measures the current machine: sysfs cache geometry plus a STREAM
    /// triad bandwidth run with a total footprint of `4 * llc` bytes,
    /// clamped to `[48 MiB, 384 MiB]` so machines with very large (or
    /// heavily shared) last-level caches still finish promptly. Pass an
    /// explicit footprint with [`MachineProfile::detect_with`] to match
    /// the working-set regime of the matrices being modeled.
    pub fn detect() -> Self {
        let (_, llc) = cache_sizes();
        Self::detect_with((4 * llc).clamp(48 << 20, 384 << 20))
    }

    /// Like [`MachineProfile::detect`], with an explicit total triad
    /// footprint in bytes (split over the three STREAM arrays).
    ///
    /// The models only require that `BW` reflects the memory level the
    /// evaluated working sets actually stream from; when matrices fit
    /// inside an oversized LLC, sizing the triad like the matrices keeps
    /// the model inputs consistent (see DESIGN.md §2).
    pub fn detect_with(triad_footprint_bytes: usize) -> Self {
        let (l1_bytes, llc_bytes) = cache_sizes();
        let elems = (triad_footprint_bytes / 24).max(1 << 16);
        MachineProfile {
            bandwidth: stream_triad_bandwidth(elems, 0.05),
            l1_bytes,
            llc_bytes,
        }
    }
}

/// Reads (L1D, LLC) sizes from sysfs, with 32 KiB / 8 MiB fallbacks.
pub fn cache_sizes() -> (usize, usize) {
    let mut l1 = None;
    let mut llc: Option<usize> = None;
    for idx in 0..8 {
        let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let read = |f: &str| std::fs::read_to_string(format!("{base}/{f}")).ok();
        let Some(size_s) = read("size") else { continue };
        let Some(bytes) = parse_cache_size(size_s.trim()) else {
            continue;
        };
        let level: u32 = read("level")
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0);
        let ctype = read("type").map(|s| s.trim().to_string()).unwrap_or_default();
        if level == 1 && ctype != "Instruction" {
            l1 = Some(bytes);
        }
        if ctype != "Instruction" {
            llc = Some(llc.unwrap_or(0).max(bytes));
        }
    }
    (l1.unwrap_or(32 * 1024), llc.unwrap_or(8 * 1024 * 1024))
}

/// Parses sysfs cache size strings like `"32K"`, `"4096K"`, `"8M"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let (digits, unit): (String, String) = s.chars().partition(|c| c.is_ascii_digit());
    let n: usize = digits.parse().ok()?;
    Some(match unit.to_ascii_uppercase().as_str() {
        "" => n,
        "K" => n * 1024,
        "M" => n * 1024 * 1024,
        "G" => n * 1024 * 1024 * 1024,
        _ => return None,
    })
}

/// STREAM triad `a[i] = b[i] + s * c[i]` over `elems` doubles per array;
/// returns bytes/second counting 24 bytes per element (two reads and one
/// write), exactly as STREAM reports it.
///
/// The arrays are allocated and initialized on the calling thread, so on
/// a NUMA machine first-touch places their pages on the caller's node —
/// this measures *local* bandwidth when the caller is pinned. To measure
/// a cross-node stream, allocate the arrays on one node and hand them to
/// [`stream_triad_bandwidth_with`] on a thread pinned elsewhere.
pub fn stream_triad_bandwidth(elems: usize, min_time: f64) -> f64 {
    let mut a = vec![0.0f64; elems];
    let b = vec![1.5f64; elems];
    let c = vec![2.5f64; elems];
    stream_triad_bandwidth_with(&mut a, &b, &c, min_time)
}

/// The triad loop of [`stream_triad_bandwidth`] over caller-provided
/// arrays, leaving page placement to the caller.
///
/// This is the seam NUMA bandwidth probes use: whoever *initialized*
/// `a`/`b`/`c` first-touched their pages onto its node, so running the
/// timed loop from a thread pinned to a different node measures the
/// remote (interconnect) stream the paper's single-socket testbed never
/// sees. `a.len()` elements are streamed; `b` and `c` must be at least
/// as long.
pub fn stream_triad_bandwidth_with(
    a: &mut [f64],
    b: &[f64],
    c: &[f64],
    min_time: f64,
) -> f64 {
    assert!(
        b.len() >= a.len() && c.len() >= a.len(),
        "triad source arrays shorter than destination"
    );
    let elems = a.len();
    let s = 3.0f64;
    let secs = timing::measure(
        || {
            for ((ai, bi), ci) in a.iter_mut().zip(b).zip(c) {
                *ai = bi + s * ci;
            }
            std::hint::black_box(&a);
        },
        min_time,
        3,
    );
    (24 * elems) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_cache_size("32K"), Some(32 * 1024));
        assert_eq!(parse_cache_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("junk"), None);
    }

    #[test]
    fn cache_sizes_are_sane() {
        let (l1, llc) = cache_sizes();
        assert!((8 * 1024..=1024 * 1024).contains(&l1));
        assert!(llc >= l1);
    }

    #[test]
    fn triad_measures_positive_bandwidth() {
        // Tiny arrays — this only checks plumbing, not a real number.
        let bw = stream_triad_bandwidth(1 << 14, 0.002);
        assert!(bw > 1e6, "implausible bandwidth {bw}");
    }

    #[test]
    fn triad_with_external_arrays_measures_positive_bandwidth() {
        let n = 1 << 14;
        let mut a = vec![0.0f64; n];
        let b = vec![1.5f64; n];
        let c = vec![2.5f64; n];
        let bw = stream_triad_bandwidth_with(&mut a, &b, &c, 0.002);
        assert!(bw > 1e6, "implausible bandwidth {bw}");
        // The loop really ran: a = b + 3c = 9.0 everywhere.
        assert!(a.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn paper_testbed_constants() {
        let m = MachineProfile::paper_testbed();
        assert_eq!(m.l1_bytes, 32 * 1024);
        assert_eq!(m.llc_bytes, 4 * 1024 * 1024);
        assert!((m.bandwidth / (1u64 << 30) as f64 - 3.36).abs() < 1e-9);
    }
}
