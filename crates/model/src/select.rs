//! Model-driven configuration selection.
//!
//! This is the models' purpose in the paper: rank every candidate
//! (format, block, implementation) by predicted time and pick the
//! minimum — "what is important for a performance model to accurately
//! select the proper blocking method and block is to properly rank the
//! different combinations … even if the predicted execution time is not
//! very accurate" (§V-B).

use crate::config::{Config, KernelKey};
use crate::machine::MachineProfile;
use crate::models::Model;
use crate::profile::{BlockTimes, KernelProfile};
use spmv_core::{Csr, Scalar};

/// One ranked candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The configuration.
    pub config: Config,
    /// Its predicted execution time, seconds per SpMV.
    pub predicted: f64,
}

/// The candidate list a model considers.
///
/// The MEM model "ignores the computational part of the kernel", so it
/// cannot distinguish kernel implementations; following §V-B it considers
/// only the non-SIMD variants ("we selected the non-simd version by
/// default"). MEMCOMP and OVERLAP rank the full space, including the
/// choice of SIMD vs scalar kernels.
pub fn candidate_configs(model: Model, include_simd: bool) -> Vec<Config> {
    match model {
        Model::Mem => Config::enumerate(false),
        Model::MemComp | Model::Overlap => Config::enumerate(include_simd),
    }
}

/// The candidate list over the *extended* search space, which adds the
/// index-compression configurations (CSR-Δ and the narrow-index blocked
/// variants) to [`candidate_configs`]. The MEM restriction to scalar
/// kernels carries over unchanged.
pub fn candidate_configs_extended(model: Model, include_simd: bool) -> Vec<Config> {
    match model {
        Model::Mem => Config::enumerate_extended(false),
        Model::MemComp | Model::Overlap => Config::enumerate_extended(include_simd),
    }
}

/// Ranks `configs` for `csr` by predicted time, ascending.
pub fn rank<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    configs: &[Config],
) -> Vec<Candidate> {
    let _rank_span = spmv_telemetry::span_with("model.rank", configs.len() as u64);
    let mut out: Vec<Candidate> = configs
        .iter()
        .map(|&config| Candidate {
            config,
            predicted: model.predict(&config.substats(csr), machine, profile),
        })
        .collect();
    out.sort_by(|a, b| a.predicted.total_cmp(&b.predicted));
    out
}

/// Returns the model's selection (minimum predicted time) over the
/// model-appropriate candidate set.
pub fn select<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
) -> Candidate {
    let configs = candidate_configs(model, include_simd);
    rank(model, csr, machine, profile, &configs)
        .into_iter()
        .next()
        .expect("candidate set is never empty")
}

/// [`select`] over the extended (index-compression) candidate set.
pub fn select_extended<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
) -> Candidate {
    let configs = candidate_configs_extended(model, include_simd);
    rank(model, csr, machine, profile, &configs)
        .into_iter()
        .next()
        .expect("candidate set is never empty")
}

/// Measured inputs that replace their calibration-time counterparts
/// before a re-rank.
///
/// The offline pipeline ranks with a machine profile and kernel profile
/// measured once; an online tuner re-measures exactly the quantities it
/// suspects — the live STREAM bandwidth, the per-block times of the
/// kernels implicated by bad residuals — and re-ranks with everything
/// else unchanged. `MeasuredOverrides` carries those re-measurements.
/// Applying them produces ordinary [`MachineProfile`]/[`KernelProfile`]
/// values, so the measured entry points below are *thin wrappers* over
/// [`rank`]/[`select_extended`]: an adaptive layer on top of them adds
/// no selection logic of its own, which is what makes its choices
/// property-testable against the offline selector.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasuredOverrides {
    /// Live STREAM bandwidth, bytes/s, replacing
    /// [`MachineProfile::bandwidth`]; `None` keeps the profiled value.
    pub bandwidth: Option<f64>,
    /// Re-profiled per-kernel block times, replacing the corresponding
    /// [`KernelProfile`] entries; keys not listed keep their profiled
    /// values.
    pub kernels: Vec<(KernelKey, BlockTimes)>,
}

impl MeasuredOverrides {
    /// Whether the overrides change anything at all.
    pub fn is_empty(&self) -> bool {
        self.bandwidth.is_none() && self.kernels.is_empty()
    }

    /// The machine and kernel profiles with these measurements applied.
    pub fn apply(
        &self,
        machine: &MachineProfile,
        profile: &KernelProfile,
    ) -> (MachineProfile, KernelProfile) {
        let mut m = *machine;
        if let Some(bw) = self.bandwidth {
            if bw.is_finite() && bw > 0.0 {
                m.bandwidth = bw;
            }
        }
        let mut p = profile.clone();
        for &(key, times) in &self.kernels {
            p.set(key, times);
        }
        (m, p)
    }
}

/// [`rank`] over the extended candidate set with measured overrides
/// applied first. Ascending by predicted time, like [`rank`].
pub fn rank_extended_measured<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
    overrides: &MeasuredOverrides,
) -> Vec<Candidate> {
    let (m, p) = overrides.apply(machine, profile);
    let configs = candidate_configs_extended(model, include_simd);
    rank(model, csr, &m, &p, &configs)
}

/// [`select_extended`] with measured overrides applied first: exactly
/// the first entry of [`rank_extended_measured`].
pub fn select_extended_measured<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
    overrides: &MeasuredOverrides,
) -> Candidate {
    let (m, p) = overrides.apply(machine, profile);
    select_extended(model, csr, &m, &p, include_simd)
}

/// One ranked multi-vector candidate: a configuration paired with a
/// vector count `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCandidate {
    /// The configuration.
    pub config: Config,
    /// Number of simultaneous right-hand sides.
    pub k: usize,
    /// Predicted execution time of one `k`-vector call, seconds.
    pub predicted: f64,
    /// Predicted time amortized per vector: `predicted / k`. The ranking
    /// key — it is what decides whether batching pays off.
    pub per_vector: f64,
}

/// Ranks every (config, k) pair by predicted time *per vector*,
/// ascending.
///
/// The matrix streams once per call regardless of `k`, so larger batches
/// amortize the dominant traffic term; ranking per vector makes batched
/// and single-vector candidates directly comparable.
///
/// # Panics
///
/// Panics if any entry of `ks` is zero.
pub fn rank_multi<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    configs: &[Config],
    ks: &[usize],
) -> Vec<MultiCandidate> {
    let _rank_span =
        spmv_telemetry::span_with("model.rank_multi", (configs.len() * ks.len()) as u64);
    let mut out = Vec::with_capacity(configs.len() * ks.len());
    for &config in configs {
        let stats = config.substats(csr);
        for &k in ks {
            let predicted = model.predict_multi(&stats, k, machine, profile);
            out.push(MultiCandidate {
                config,
                k,
                predicted,
                per_vector: predicted / k as f64,
            });
        }
    }
    out.sort_by(|a, b| a.per_vector.total_cmp(&b.per_vector));
    out
}

/// Returns the model's multi-vector selection: the (config, k) pair with
/// the minimum predicted time per vector over the model-appropriate
/// candidate set.
pub fn select_multi<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
    ks: &[usize],
) -> MultiCandidate {
    let configs = candidate_configs(model, include_simd);
    rank_multi(model, csr, machine, profile, &configs, ks)
        .into_iter()
        .next()
        .expect("candidate set is never empty")
}

/// [`select_multi`] over the extended (index-compression) candidate set.
pub fn select_multi_extended<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
    ks: &[usize],
) -> MultiCandidate {
    let configs = candidate_configs_extended(model, include_simd);
    rank_multi(model, csr, machine, profile, &configs, ks)
        .into_iter()
        .next()
        .expect("candidate set is never empty")
}

/// [`select_multi_extended`] with measured overrides applied first.
pub fn select_multi_extended_measured<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    machine: &MachineProfile,
    profile: &KernelProfile,
    include_simd: bool,
    ks: &[usize],
    overrides: &MeasuredOverrides,
) -> MultiCandidate {
    let (m, p) = overrides.apply(machine, profile);
    select_multi_extended(model, csr, &m, &p, include_simd, ks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BlockConfig, KernelKey};
    use crate::profile::BlockTimes;
    use spmv_core::Coo;
    use spmv_gen::GenSpec;
    use spmv_kernels::{BlockShape, KernelImpl};

    fn machine() -> MachineProfile {
        MachineProfile {
            bandwidth: 3e9,
            l1_bytes: 32 * 1024,
            llc_bytes: 4 << 20,
        }
    }

    #[test]
    fn mem_considers_only_scalar_configs() {
        let configs = candidate_configs(Model::Mem, true);
        assert!(configs.iter().all(|c| c.imp == KernelImpl::Scalar));
    }

    #[test]
    fn mem_selects_bcsr_for_pure_block_matrices() {
        // A pure 2x2-block matrix: BCSR 2x2 stores one index per four
        // values, so its working set is minimal and MEM must prefer a
        // blocked format over CSR.
        let mut coo = Coo::new(64, 64);
        for bi in 0..32 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let best = select(Model::Mem, &csr, &machine(), &profile, true);
        assert_ne!(best.config.block, BlockConfig::Csr, "MEM must pick blocking");
        // And its ws must be below CSR's.
        let csr_ws: usize = Config::CSR.substats(&csr).iter().map(|s| s.ws_bytes).sum();
        let best_ws: usize = best
            .config
            .substats(&csr)
            .iter()
            .map(|s| s.ws_bytes)
            .sum();
        assert!(best_ws < csr_ws);
    }

    #[test]
    fn scattered_matrix_keeps_csr() {
        // Isolated nonzeros: every blocked format pays padding or extra
        // structures, so CSR must win under every model.
        let csr = GenSpec::Random {
            n: 300,
            m: 300,
            nnz_per_row: 2,
        }
        .build(3);
        let profile = KernelProfile::uniform(1e-9, 1.0);
        for model in Model::ALL {
            let best = select(model, &csr, &machine(), &profile, true);
            assert_eq!(
                best.config.block,
                BlockConfig::Csr,
                "{model} should keep CSR on scatter"
            );
        }
    }

    #[test]
    fn extended_select_prefers_delta_csr_on_scatter() {
        // Same scattered matrix as `scattered_matrix_keeps_csr`: blocked
        // formats pay padding, so CSR wins the base space — and CSR-Δ,
        // which streams strictly fewer index bytes at the same element
        // count, must win the extended space under every model. The
        // proportional profile (not the uniform one) is essential here:
        // SELL-C-σ covers these uniform-length rows with nnz/c wide
        // "blocks", so a flat per-block cost would hand it an artificial
        // compute advantage; charging per element makes compute equal
        // and lets byte traffic decide.
        let csr = GenSpec::Random {
            n: 300,
            m: 300,
            nnz_per_row: 2,
        }
        .build(3);
        let profile = KernelProfile::proportional(1e-9, 1.0);
        for model in Model::ALL {
            let best = select_extended(model, &csr, &machine(), &profile, true);
            assert_eq!(
                best.config.block,
                BlockConfig::CsrDelta,
                "{model} should pick CSR-DELTA on scatter"
            );
        }
    }

    #[test]
    fn extended_select_can_pick_sell() {
        // Uniform-length rows are SELL's best case: nearly no padding,
        // and each c-row slice column covers c elements. Under a flat
        // per-block cost the compute-aware models must rank a SELL
        // configuration first, proving the format competes end-to-end
        // in the extended space. MEM is excluded: it sees only byte
        // traffic, where CSR-Δ's delta stream wins.
        let csr = GenSpec::Random {
            n: 300,
            m: 300,
            nnz_per_row: 2,
        }
        .build(3);
        let profile = KernelProfile::uniform(1e-9, 1.0);
        for model in [Model::MemComp, Model::Overlap] {
            let best = select_extended(model, &csr, &machine(), &profile, true);
            assert!(
                matches!(
                    best.config.block,
                    BlockConfig::SellCSigma { .. } | BlockConfig::SellCSigmaNarrow { .. }
                ),
                "{model} picked {} instead of a SELL config",
                best.config
            );
        }
    }

    #[test]
    fn extended_select_prefers_narrow_blocks_on_block_matrices() {
        // The pure 2x2-block matrix: BCSR 2x2 already wins the base
        // space under MEM; its narrow-index twin streams half the block
        // index bytes, so the extended space must rank it first.
        let mut coo = Coo::new(64, 64);
        for bi in 0..32 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let shape = BlockShape::new(2, 2).unwrap();
        let imp = KernelImpl::Scalar;
        let narrow = Config {
            block: BlockConfig::BcsrNarrow(shape),
            imp,
        };
        let wide = Config {
            block: BlockConfig::Bcsr(shape),
            imp,
        };
        let m = machine();
        let t_narrow = Model::Mem.predict(&narrow.substats(&csr), &m, &profile);
        let t_wide = Model::Mem.predict(&wide.substats(&csr), &m, &profile);
        assert!(t_narrow < t_wide);
        // The extended ranking must place the narrow twin above the wide
        // one; the overall winner may be even leaner (the padding-free
        // masked formats also stream fewer bytes than padded BCSR), but
        // it can never be worse than the narrow candidate it contains.
        let configs = candidate_configs_extended(Model::Mem, true);
        let ranked = rank(Model::Mem, &csr, &m, &profile, &configs);
        let pos = |b: BlockConfig| ranked.iter().position(|c| c.config.block == b).unwrap();
        assert!(pos(BlockConfig::BcsrNarrow(shape)) < pos(BlockConfig::Bcsr(shape)));
        let best = select_extended(Model::Mem, &csr, &m, &profile, true);
        assert!(best.predicted <= t_narrow);
    }

    #[test]
    fn memcomp_punishes_slow_kernels_where_mem_cannot(
    ) {
        // Give the 2x2 BCSR kernel an absurd per-block cost: MEMCOMP must
        // avoid it, MEM (blind to compute) must still pick it.
        let mut coo = Coo::new(64, 64);
        for bi in 0..32 {
            for (di, dj) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                coo.push(2 * bi + di, 2 * bi + dj, 1.0).unwrap();
            }
        }
        let csr = Csr::from_coo(&coo);
        let mut profile = KernelProfile::uniform(1e-12, 1.0);
        for imp in KernelImpl::ALL {
            profile.set(
                KernelKey::Bcsr {
                    shape: BlockShape::new(2, 2).unwrap(),
                    imp,
                },
                BlockTimes { t_b: 1.0, nof: 1.0 },
            );
        }
        let mem = select(Model::Mem, &csr, &machine(), &profile, false);
        let memcomp = select(Model::MemComp, &csr, &machine(), &profile, false);
        assert_eq!(
            mem.config.block,
            BlockConfig::Bcsr(BlockShape::new(2, 2).unwrap())
        );
        assert_ne!(
            memcomp.config.block,
            BlockConfig::Bcsr(BlockShape::new(2, 2).unwrap())
        );
    }

    #[test]
    fn rank_is_sorted_and_complete() {
        let csr = GenSpec::Stencil2d { nx: 12, ny: 12 }.build(0);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let configs = Config::enumerate(true);
        let ranked = rank(Model::Overlap, &csr, &machine(), &profile, &configs);
        assert_eq!(ranked.len(), configs.len());
        for w in ranked.windows(2) {
            assert!(w[0].predicted <= w[1].predicted);
        }
    }

    #[test]
    fn rank_multi_is_sorted_and_complete() {
        let csr = GenSpec::Stencil2d { nx: 12, ny: 12 }.build(0);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let configs = Config::enumerate(true);
        let ks = [1usize, 2, 4, 8];
        let ranked = rank_multi(Model::Overlap, &csr, &machine(), &profile, &configs, &ks);
        assert_eq!(ranked.len(), configs.len() * ks.len());
        for w in ranked.windows(2) {
            assert!(w[0].per_vector <= w[1].per_vector);
        }
        for c in &ranked {
            assert!((c.per_vector - c.predicted / c.k as f64).abs() < 1e-18);
        }
    }

    #[test]
    fn mem_prefers_larger_batches() {
        // Under MEM the per-vector cost strictly decreases with k for any
        // matrix with nonzero structure bytes, so the selection must take
        // the largest offered k.
        let csr = GenSpec::Stencil2d { nx: 16, ny: 16 }.build(0);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let best = select_multi(Model::Mem, &csr, &machine(), &profile, false, &[1, 2, 4, 8]);
        assert_eq!(best.k, 8);
        // And for a fixed config, per-vector time is non-increasing in k.
        let stats = Config::CSR.substats(&csr);
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let t = Model::Mem.predict_multi(&stats, k, &machine(), &profile) / k as f64;
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn multi_rank_agrees_with_single_at_k1() {
        let csr = GenSpec::Stencil2d { nx: 10, ny: 10 }.build(0);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let configs = Config::enumerate(false);
        let single = rank(Model::MemComp, &csr, &machine(), &profile, &configs);
        let multi = rank_multi(Model::MemComp, &csr, &machine(), &profile, &configs, &[1]);
        for (s, m) in single.iter().zip(&multi) {
            assert_eq!(s.config, m.config);
            assert_eq!(s.predicted, m.predicted);
        }
    }

    #[test]
    fn measured_overrides_apply_only_what_they_carry() {
        let m = machine();
        let p = KernelProfile::uniform(1e-9, 0.5);
        let none = MeasuredOverrides::default();
        assert!(none.is_empty());
        let (m2, p2) = none.apply(&m, &p);
        assert_eq!(m2, m);
        assert_eq!(p2.get(KernelKey::Csr), p.get(KernelKey::Csr));

        let times = BlockTimes { t_b: 7e-9, nof: 0.9 };
        let ovr = MeasuredOverrides {
            bandwidth: Some(9e9),
            kernels: vec![(KernelKey::Csr, times)],
        };
        assert!(!ovr.is_empty());
        let (m3, p3) = ovr.apply(&m, &p);
        assert_eq!(m3.bandwidth, 9e9);
        assert_eq!(m3.l1_bytes, m.l1_bytes);
        assert_eq!(p3.get(KernelKey::Csr), times);
        // Keys not listed keep their profiled values.
        let other = KernelKey::CsrDelta { imp: KernelImpl::Scalar };
        assert_eq!(p3.get(other), p.get(other));
        // Junk bandwidth is ignored rather than poisoning predictions.
        let junk = MeasuredOverrides {
            bandwidth: Some(f64::NAN),
            kernels: vec![],
        };
        assert_eq!(junk.apply(&m, &p).0.bandwidth, m.bandwidth);
    }

    #[test]
    fn measured_selection_is_plain_selection_on_overridden_inputs() {
        // The wrapper must add nothing: its result is exactly
        // select_extended on the post-apply profiles, candidate by
        // candidate.
        let csr = GenSpec::FemBlocks {
            nodes: 40,
            dof: 3,
            neighbors: 5,
        }
        .build(2);
        let m = machine();
        let p = KernelProfile::uniform(1e-9, 0.5);
        let ovr = MeasuredOverrides {
            bandwidth: Some(1.5e9),
            kernels: vec![(
                KernelKey::Bcsr {
                    shape: BlockShape::new(2, 2).unwrap(),
                    imp: KernelImpl::Simd,
                },
                BlockTimes { t_b: 4e-8, nof: 1.0 },
            )],
        };
        for model in Model::ALL {
            let (m2, p2) = ovr.apply(&m, &p);
            let direct = select_extended(model, &csr, &m2, &p2, true);
            let wrapped = select_extended_measured(model, &csr, &m, &p, true, &ovr);
            assert_eq!(direct, wrapped, "{model}");
            let ranked = rank_extended_measured(model, &csr, &m, &p, true, &ovr);
            assert_eq!(ranked[0], wrapped, "{model} rank head");
            let multi =
                select_multi_extended_measured(model, &csr, &m, &p, true, &[1, 4], &ovr);
            let direct_multi = select_multi_extended(model, &csr, &m2, &p2, true, &[1, 4]);
            assert_eq!(multi, direct_multi, "{model} multi");
        }
    }

    #[test]
    fn overlap_between_mem_and_memcomp_predictions() {
        let csr = GenSpec::FemBlocks {
            nodes: 40,
            dof: 3,
            neighbors: 5,
        }
        .build(2);
        let profile = KernelProfile::uniform(5e-9, 0.4);
        let m = machine();
        for config in Config::enumerate(false) {
            let stats = config.substats(&csr);
            let mem = Model::Mem.predict(&stats, &m, &profile);
            let ovl = Model::Overlap.predict(&stats, &m, &profile);
            let cmp = Model::MemComp.predict(&stats, &m, &profile);
            assert!(mem <= ovl + 1e-15 && ovl <= cmp + 1e-15, "{config}");
        }
    }
}
