//! The (format, block, implementation) configuration space the models
//! search.

use core::fmt;
use spmv_core::{Csr, Index, IndexWidth, MatrixShape, Scalar, SpMv, SpMvMulti};
use spmv_formats::{
    bcsd_dec_stats, bcsd_masked_stats, bcsd_stats, bcsr_dec_stats, bcsr_masked_stats, bcsr_stats,
    csr_delta_stats, sell_sigmas, sellc_stats, Bcsd, BcsdDec, BcsdMasked, Bcsr, BcsrDec,
    BcsrMasked, CsrDelta, FormatKind, SellCSigma, SELL_SIGMA_FULL,
};
use spmv_kernels::simd::SimdScalar;
use spmv_kernels::{BlockShape, KernelImpl, BCSD_SIZES, SELL_HEIGHTS};

/// A storage format plus its block parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockConfig {
    /// Plain CSR (the models' degenerate 1×1 blocking).
    Csr,
    /// BCSR with the given shape.
    Bcsr(BlockShape),
    /// BCSR-DEC with the given shape.
    BcsrDec(BlockShape),
    /// BCSD with the given diagonal size.
    Bcsd(usize),
    /// BCSD-DEC with the given diagonal size.
    BcsdDec(usize),
    /// Delta-encoded CSR (index-compression extension).
    CsrDelta,
    /// BCSR whose block-column array is stored at the narrowest index
    /// width that fits the column space (index-compression extension).
    BcsrNarrow(BlockShape),
    /// BCSD with a narrow-width block-column array (index-compression
    /// extension).
    BcsdNarrow(usize),
    /// Masked BCSR: per-block occupancy bitmasks, no padded values
    /// (padding-free extension).
    BcsrMasked(BlockShape),
    /// Masked BCSD: per-block occupancy bitmasks, no padded values.
    BcsdMasked(usize),
    /// SELL-C-σ: slice height `c`, sorting window `sigma`
    /// ([`SELL_SIGMA_FULL`] for the global sort; padding-dominated
    /// extension).
    SellCSigma {
        /// Slice height (rows per slice; one of
        /// [`spmv_kernels::SELL_HEIGHTS`]).
        c: usize,
        /// Sorting window in rows.
        sigma: usize,
    },
    /// SELL-C-σ with a narrow-width column-index array
    /// (index-compression extension).
    SellCSigmaNarrow {
        /// Slice height.
        c: usize,
        /// Sorting window in rows.
        sigma: usize,
    },
}

impl BlockConfig {
    /// The format family this configuration belongs to.
    pub fn kind(self) -> FormatKind {
        match self {
            BlockConfig::Csr => FormatKind::Csr,
            BlockConfig::Bcsr(_) | BlockConfig::BcsrNarrow(_) => FormatKind::Bcsr,
            BlockConfig::BcsrDec(_) => FormatKind::BcsrDec,
            BlockConfig::Bcsd(_) | BlockConfig::BcsdNarrow(_) => FormatKind::Bcsd,
            BlockConfig::BcsdDec(_) => FormatKind::BcsdDec,
            BlockConfig::CsrDelta => FormatKind::CsrDelta,
            BlockConfig::BcsrMasked(_) => FormatKind::BcsrMasked,
            BlockConfig::BcsdMasked(_) => FormatKind::BcsdMasked,
            BlockConfig::SellCSigma { .. } | BlockConfig::SellCSigmaNarrow { .. } => {
                FormatKind::SellCSigma
            }
        }
    }
}

/// One point of the search space: block configuration plus kernel
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Format and block parameter.
    pub block: BlockConfig,
    /// Scalar or SIMD kernels (always scalar for CSR).
    pub imp: KernelImpl,
}

impl Config {
    /// Plain CSR with the baseline kernel.
    pub const CSR: Config = Config {
        block: BlockConfig::Csr,
        imp: KernelImpl::Scalar,
    };

    /// Enumerates the search space (§V-A): CSR, plus every BCSR/BCSR-DEC
    /// shape with `r*c <= 8`, plus every BCSD/BCSD-DEC size in `2..=8` —
    /// each in scalar and (when `include_simd`) SIMD form.
    pub fn enumerate(include_simd: bool) -> Vec<Config> {
        let imps: &[KernelImpl] = if include_simd {
            &[KernelImpl::Scalar, KernelImpl::Simd]
        } else {
            &[KernelImpl::Scalar]
        };
        let mut out = vec![Config::CSR];
        for shape in BlockShape::search_space() {
            for &imp in imps {
                out.push(Config {
                    block: BlockConfig::Bcsr(shape),
                    imp,
                });
                out.push(Config {
                    block: BlockConfig::BcsrDec(shape),
                    imp,
                });
            }
        }
        for b in BCSD_SIZES {
            for &imp in imps {
                out.push(Config {
                    block: BlockConfig::Bcsd(b),
                    imp,
                });
                out.push(Config {
                    block: BlockConfig::BcsdDec(b),
                    imp,
                });
            }
        }
        out
    }

    /// Enumerates the *extended* search space: everything in
    /// [`Config::enumerate`] plus the index-compression configurations —
    /// CSR-Δ and the narrow-index variants of every BCSR shape and BCSD
    /// size. Kept separate from the paper's base space so the original
    /// experiments are unchanged.
    pub fn enumerate_extended(include_simd: bool) -> Vec<Config> {
        let imps: &[KernelImpl] = if include_simd {
            &[KernelImpl::Scalar, KernelImpl::Simd]
        } else {
            &[KernelImpl::Scalar]
        };
        let mut out = Config::enumerate(include_simd);
        for &imp in imps {
            out.push(Config {
                block: BlockConfig::CsrDelta,
                imp,
            });
        }
        for shape in BlockShape::search_space() {
            for &imp in imps {
                out.push(Config {
                    block: BlockConfig::BcsrNarrow(shape),
                    imp,
                });
            }
        }
        for b in BCSD_SIZES {
            for &imp in imps {
                out.push(Config {
                    block: BlockConfig::BcsdNarrow(b),
                    imp,
                });
            }
        }
        // Masked (padding-free) variants, appended last so the base and
        // narrow spaces keep their prefix positions.
        for shape in BlockShape::search_space() {
            for &imp in imps {
                out.push(Config {
                    block: BlockConfig::BcsrMasked(shape),
                    imp,
                });
            }
        }
        for b in BCSD_SIZES {
            for &imp in imps {
                out.push(Config {
                    block: BlockConfig::BcsdMasked(b),
                    imp,
                });
            }
        }
        // SELL-C-σ variants, appended last: every slice height crossed
        // with the σ window set, wide then narrow indices.
        for c in SELL_HEIGHTS {
            for sigma in sell_sigmas(c) {
                for &imp in imps {
                    out.push(Config {
                        block: BlockConfig::SellCSigma { c, sigma },
                        imp,
                    });
                }
            }
        }
        for c in SELL_HEIGHTS {
            for sigma in sell_sigmas(c) {
                for &imp in imps {
                    out.push(Config {
                        block: BlockConfig::SellCSigmaNarrow { c, sigma },
                        imp,
                    });
                }
            }
        }
        out
    }

    /// The profiling key of the blocked (main) submatrix's kernel.
    ///
    /// The narrow-index variants reuse their full-width kernels: the
    /// scratch-widened index slice feeds the very same block routines, so
    /// `t_b` and `nof` carry over.
    pub fn kernel_key(&self) -> KernelKey {
        match self.block {
            BlockConfig::Csr => KernelKey::Csr,
            BlockConfig::CsrDelta => KernelKey::CsrDelta { imp: self.imp },
            BlockConfig::Bcsr(shape)
            | BlockConfig::BcsrDec(shape)
            | BlockConfig::BcsrNarrow(shape) => KernelKey::Bcsr {
                shape,
                imp: self.imp,
            },
            BlockConfig::Bcsd(b) | BlockConfig::BcsdDec(b) | BlockConfig::BcsdNarrow(b) => {
                KernelKey::Bcsd {
                    b: b as u8,
                    imp: self.imp,
                }
            }
            // The masked kernels iterate mask bits and expand partial
            // blocks, so their per-block cost differs from the padded
            // kernels' — they get their own profiling keys.
            BlockConfig::BcsrMasked(shape) => KernelKey::BcsrMasked {
                shape,
                imp: self.imp,
            },
            BlockConfig::BcsdMasked(b) => KernelKey::BcsdMasked {
                b: b as u8,
                imp: self.imp,
            },
            // σ only shuffles rows between slices; the per-slice-column
            // work is fixed by the slice height, so every σ shares one
            // profiled kernel per height.
            BlockConfig::SellCSigma { c, .. } | BlockConfig::SellCSigmaNarrow { c, .. } => {
                KernelKey::Sell {
                    c: c as u8,
                    imp: self.imp,
                }
            }
        }
    }

    /// Materializes the configuration for `csr`.
    pub fn build<T: SimdScalar>(&self, csr: &Csr<T>) -> BuiltFormat<T> {
        match self.block {
            BlockConfig::Csr => BuiltFormat::Csr(csr.clone()),
            BlockConfig::Bcsr(shape) => BuiltFormat::Bcsr(Bcsr::from_csr(csr, shape, self.imp)),
            BlockConfig::BcsrDec(shape) => {
                BuiltFormat::BcsrDec(BcsrDec::from_csr(csr, shape, self.imp))
            }
            BlockConfig::Bcsd(b) => BuiltFormat::Bcsd(Bcsd::from_csr(csr, b, self.imp)),
            BlockConfig::BcsdDec(b) => BuiltFormat::BcsdDec(BcsdDec::from_csr(csr, b, self.imp)),
            BlockConfig::CsrDelta => BuiltFormat::CsrDelta(CsrDelta::from_csr(csr, self.imp)),
            BlockConfig::BcsrNarrow(shape) => {
                BuiltFormat::Bcsr(Bcsr::from_csr_narrow(csr, shape, self.imp))
            }
            BlockConfig::BcsdNarrow(b) => {
                BuiltFormat::Bcsd(Bcsd::from_csr_narrow(csr, b, self.imp))
            }
            BlockConfig::BcsrMasked(shape) => {
                BuiltFormat::BcsrMasked(BcsrMasked::from_csr(csr, shape, self.imp))
            }
            BlockConfig::BcsdMasked(b) => {
                BuiltFormat::BcsdMasked(BcsdMasked::from_csr(csr, b, self.imp))
            }
            BlockConfig::SellCSigma { c, sigma } => {
                BuiltFormat::SellCSigma(SellCSigma::from_csr(csr, c, sigma, self.imp))
            }
            BlockConfig::SellCSigmaNarrow { c, sigma } => {
                BuiltFormat::SellCSigma(SellCSigma::from_csr_narrow(csr, c, sigma, self.imp))
            }
        }
    }

    /// Computes the per-submatrix statistics the models need, without
    /// materializing the format. The returned byte totals are exact — the
    /// test suite checks them against [`Config::build`].
    pub fn substats<T: Scalar>(&self, csr: &Csr<T>) -> Vec<SubStat> {
        let idx = core::mem::size_of::<Index>();
        let vecs = (csr.n_rows() + csr.n_cols()) * T::BYTES;
        let csr_bytes =
            |nnz: usize| nnz * (T::BYTES + idx) + (csr.n_rows() + 1) * idx;
        let main_bytes = |stored: usize, nb: usize, index_rows: usize| {
            stored * T::BYTES + nb * idx + (index_rows + 1) * idx
        };
        // Narrow variants shrink only the per-block column array; the row
        // index stays full-width.
        let narrow_bytes = |stored: usize, nb: usize, index_rows: usize| {
            let bw = IndexWidth::for_cols(csr.n_cols()).bytes();
            stored * T::BYTES + nb * bw + (index_rows + 1) * idx
        };
        match self.block {
            BlockConfig::Csr => vec![SubStat {
                ws_bytes: csr_bytes(csr.nnz()) + vecs,
                vec_bytes: vecs,
                nb: csr.nnz(),
                key: KernelKey::Csr,
            }],
            BlockConfig::CsrDelta => {
                let st = csr_delta_stats(csr);
                vec![SubStat {
                    ws_bytes: csr.nnz() * T::BYTES
                        + st.stream_bytes
                        + (csr.n_rows() + 1) * idx
                        + vecs,
                    vec_bytes: vecs,
                    nb: csr.nnz(),
                    key: self.kernel_key(),
                }]
            }
            BlockConfig::BcsrNarrow(shape) => {
                let st = bcsr_stats(csr, shape);
                vec![SubStat {
                    ws_bytes: narrow_bytes(st.stored, st.nb, st.index_rows) + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            BlockConfig::BcsdNarrow(b) => {
                let st = bcsd_stats(csr, b);
                vec![SubStat {
                    ws_bytes: narrow_bytes(st.stored, st.nb, st.index_rows) + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            BlockConfig::Bcsr(shape) => {
                let st = bcsr_stats(csr, shape);
                vec![SubStat {
                    ws_bytes: main_bytes(st.stored, st.nb, st.index_rows) + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            BlockConfig::Bcsd(b) => {
                let st = bcsd_stats(csr, b);
                vec![SubStat {
                    ws_bytes: main_bytes(st.stored, st.nb, st.index_rows) + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            // Masked variants charge true stored-value bytes plus one
            // occupancy byte per block and a per-row value-offset array
            // on top of the usual index arrays.
            BlockConfig::BcsrMasked(shape) => {
                let st = bcsr_masked_stats(csr, shape);
                vec![SubStat {
                    ws_bytes: main_bytes(st.stored, st.nb, st.index_rows)
                        + st.nb
                        + (st.index_rows + 1) * idx
                        + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            BlockConfig::BcsdMasked(b) => {
                let st = bcsd_masked_stats(csr, b);
                vec![SubStat {
                    ws_bytes: main_bytes(st.stored, st.nb, st.index_rows)
                        + st.nb
                        + (st.index_rows + 1) * idx
                        + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            // SELL charges the padded value stream, one column index per
            // stored slot (narrowable), the slice pointer and per-lane
            // length arrays, and the row permutation.
            BlockConfig::SellCSigma { c, sigma } | BlockConfig::SellCSigmaNarrow { c, sigma } => {
                let st = sellc_stats(csr, c, sigma);
                let colw = if matches!(self.block, BlockConfig::SellCSigmaNarrow { .. }) {
                    IndexWidth::for_cols(csr.n_cols()).bytes()
                } else {
                    idx
                };
                vec![SubStat {
                    ws_bytes: st.stored * T::BYTES
                        + st.stored * colw
                        + (st.index_rows + 1) * idx
                        + st.index_rows * c * idx
                        + csr.n_rows() * idx
                        + vecs,
                    vec_bytes: vecs,
                    nb: st.nb,
                    key: self.kernel_key(),
                }]
            }
            BlockConfig::BcsrDec(shape) => {
                let st = bcsr_dec_stats(csr, shape);
                vec![
                    SubStat {
                        ws_bytes: main_bytes(st.stored, st.nb, st.index_rows) + vecs,
                        vec_bytes: vecs,
                        nb: st.nb,
                        key: self.kernel_key(),
                    },
                    SubStat {
                        ws_bytes: csr_bytes(st.rest_nnz) + vecs,
                        vec_bytes: vecs,
                        nb: st.rest_nnz,
                        key: KernelKey::Csr,
                    },
                ]
            }
            BlockConfig::BcsdDec(b) => {
                let st = bcsd_dec_stats(csr, b);
                vec![
                    SubStat {
                        ws_bytes: main_bytes(st.stored, st.nb, st.index_rows) + vecs,
                        vec_bytes: vecs,
                        nb: st.nb,
                        key: self.kernel_key(),
                    },
                    SubStat {
                        ws_bytes: csr_bytes(st.rest_nnz) + vecs,
                        vec_bytes: vecs,
                        nb: st.rest_nnz,
                        key: KernelKey::Csr,
                    },
                ]
            }
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            BlockConfig::Csr => write!(f, "CSR")?,
            BlockConfig::Bcsr(s) => write!(f, "BCSR {s}")?,
            BlockConfig::BcsrDec(s) => write!(f, "BCSR-DEC {s}")?,
            BlockConfig::Bcsd(b) => write!(f, "BCSD b={b}")?,
            BlockConfig::BcsdDec(b) => write!(f, "BCSD-DEC b={b}")?,
            BlockConfig::CsrDelta => write!(f, "CSR-DELTA")?,
            BlockConfig::BcsrNarrow(s) => write!(f, "BCSR16 {s}")?,
            BlockConfig::BcsdNarrow(b) => write!(f, "BCSD16 b={b}")?,
            BlockConfig::BcsrMasked(s) => write!(f, "BCSR-MASK {s}")?,
            BlockConfig::BcsdMasked(b) => write!(f, "BCSD-MASK b={b}")?,
            BlockConfig::SellCSigma { c, sigma } => {
                write!(f, "SELL {c}/{}", SigmaLabel(sigma))?
            }
            BlockConfig::SellCSigmaNarrow { c, sigma } => {
                write!(f, "SELL16 {c}/{}", SigmaLabel(sigma))?
            }
        }
        if self.imp == KernelImpl::Simd {
            write!(f, " simd")?;
        }
        Ok(())
    }
}

/// Renders a σ value, spelling the [`SELL_SIGMA_FULL`] sentinel as `n`.
struct SigmaLabel(usize);

impl fmt::Display for SigmaLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == SELL_SIGMA_FULL {
            f.write_str("n")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Per-submatrix model inputs: working set, block count, kernel identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubStat {
    /// Working set of this submatrix's SpMV pass (arrays + vectors).
    pub ws_bytes: usize,
    /// The vector portion of [`ws_bytes`](Self::ws_bytes): `x` plus `y`
    /// bytes for a single right-hand side. A `k`-vector call streams the
    /// matrix arrays (`ws_bytes - vec_bytes`) once but this much vector
    /// traffic `k` times — the split [`crate::Model::predict_multi`]
    /// needs.
    pub vec_bytes: usize,
    /// Number of blocks (`nnz` for CSR submatrices).
    pub nb: usize,
    /// Which profiled kernel executes this submatrix.
    pub key: KernelKey,
}

/// Identity of a profiled kernel: what `t_b` and `nof` are keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKey {
    /// The CSR row kernel (1×1 degenerate block).
    Csr,
    /// A BCSR block-row kernel.
    Bcsr {
        /// Block shape.
        shape: BlockShape,
        /// Kernel implementation.
        imp: KernelImpl,
    },
    /// A BCSD segment kernel.
    Bcsd {
        /// Diagonal block size.
        b: u8,
        /// Kernel implementation.
        imp: KernelImpl,
    },
    /// The CSR-Δ row kernel (decodes the delta stream while multiplying).
    CsrDelta {
        /// Kernel implementation (SIMD accelerates unit runs).
        imp: KernelImpl,
    },
    /// A masked BCSR block-row kernel (expands occupancy-masked blocks).
    BcsrMasked {
        /// Block shape.
        shape: BlockShape,
        /// Kernel implementation.
        imp: KernelImpl,
    },
    /// A masked BCSD segment kernel.
    BcsdMasked {
        /// Diagonal block size.
        b: u8,
        /// Kernel implementation.
        imp: KernelImpl,
    },
    /// A SELL-C-σ slice kernel (σ does not change the kernel, only the
    /// slice widths it runs over).
    Sell {
        /// Slice height.
        c: u8,
        /// Kernel implementation.
        imp: KernelImpl,
    },
}

impl KernelKey {
    /// Elements processed per block by this kernel (1 for the CSR
    /// degenerate case).
    pub fn block_elems(self) -> usize {
        match self {
            KernelKey::Csr | KernelKey::CsrDelta { .. } => 1,
            KernelKey::Bcsr { shape, .. } | KernelKey::BcsrMasked { shape, .. } => shape.elems(),
            KernelKey::Bcsd { b, .. } | KernelKey::BcsdMasked { b, .. } => b as usize,
            KernelKey::Sell { c, .. } => c as usize,
        }
    }
}

impl fmt::Display for KernelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelKey::Csr => write!(f, "csr"),
            KernelKey::Bcsr { shape, imp } => write!(f, "bcsr-{shape}{}", imp.suffix()),
            KernelKey::Bcsd { b, imp } => write!(f, "bcsd-{b}{}", imp.suffix()),
            KernelKey::CsrDelta { imp } => write!(f, "csr-delta{}", imp.suffix()),
            KernelKey::BcsrMasked { shape, imp } => {
                write!(f, "bcsr-mask-{shape}{}", imp.suffix())
            }
            KernelKey::BcsdMasked { b, imp } => write!(f, "bcsd-mask-{b}{}", imp.suffix()),
            KernelKey::Sell { c, imp } => write!(f, "sell-{c}{}", imp.suffix()),
        }
    }
}

/// A materialized configuration; delegates [`SpMv`] to the concrete
/// format without boxing.
#[derive(Debug, Clone)]
pub enum BuiltFormat<T> {
    /// CSR.
    Csr(Csr<T>),
    /// BCSR.
    Bcsr(Bcsr<T>),
    /// BCSR-DEC.
    BcsrDec(BcsrDec<T>),
    /// BCSD.
    Bcsd(Bcsd<T>),
    /// BCSD-DEC.
    BcsdDec(BcsdDec<T>),
    /// CSR-Δ.
    CsrDelta(CsrDelta<T>),
    /// Masked BCSR.
    BcsrMasked(BcsrMasked<T>),
    /// Masked BCSD.
    BcsdMasked(BcsdMasked<T>),
    /// SELL-C-σ.
    SellCSigma(SellCSigma<T>),
}

macro_rules! delegate {
    ($self:expr, $m:ident ( $($arg:expr),* )) => {
        match $self {
            BuiltFormat::Csr(x) => x.$m($($arg),*),
            BuiltFormat::Bcsr(x) => x.$m($($arg),*),
            BuiltFormat::BcsrDec(x) => x.$m($($arg),*),
            BuiltFormat::Bcsd(x) => x.$m($($arg),*),
            BuiltFormat::BcsdDec(x) => x.$m($($arg),*),
            BuiltFormat::CsrDelta(x) => x.$m($($arg),*),
            BuiltFormat::BcsrMasked(x) => x.$m($($arg),*),
            BuiltFormat::BcsdMasked(x) => x.$m($($arg),*),
            BuiltFormat::SellCSigma(x) => x.$m($($arg),*),
        }
    };
}

impl<T: SimdScalar> MatrixShape for BuiltFormat<T> {
    fn n_rows(&self) -> usize {
        delegate!(self, n_rows())
    }
    fn n_cols(&self) -> usize {
        delegate!(self, n_cols())
    }
}

impl<T: SimdScalar> SpMv<T> for BuiltFormat<T> {
    fn spmv_into(&self, x: &[T], y: &mut [T]) {
        delegate!(self, spmv_into(x, y))
    }
    fn nnz_stored(&self) -> usize {
        delegate!(self, nnz_stored())
    }
    fn matrix_bytes(&self) -> usize {
        delegate!(self, matrix_bytes())
    }
    fn working_set_bytes(&self) -> usize {
        delegate!(self, working_set_bytes())
    }
}

impl<T: SimdScalar> SpMvMulti<T> for BuiltFormat<T> {
    fn spmv_multi_into(&self, x: &[T], y: &mut [T], k: usize) {
        delegate!(self, spmv_multi_into(x, y, k))
    }
    fn working_set_bytes_multi(&self, k: usize) -> usize {
        delegate!(self, working_set_bytes_multi(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmv_core::Coo;

    fn fixture() -> Csr<f64> {
        let mut coo = Coo::new(29, 31);
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..29 {
            if i < 31 {
                let _ = coo.push(i, i, 2.0);
            }
            for _ in 0..3 {
                let j = (next() as usize) % 31;
                let _ = coo.push(i, j, 1.0);
                if j + 1 < 31 && next() % 2 == 0 {
                    let _ = coo.push(i, j + 1, 1.0);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn enumerate_counts() {
        // Derived, not hardcoded: CSR + per implementation a BCSR and a
        // BCSR-DEC config per shape, plus a BCSD and a BCSD-DEC config
        // per diagonal size.
        let shapes = BlockShape::search_space().len();
        let sizes = BCSD_SIZES.len();
        assert_eq!(Config::enumerate(false).len(), 1 + 2 * (shapes + sizes));
        assert_eq!(Config::enumerate(true).len(), 1 + 4 * (shapes + sizes));
    }

    #[test]
    fn enumerate_extended_counts() {
        // Per implementation the extensions add CSR-Δ, one narrow config
        // per shape/size, one masked config per shape/size, and a wide
        // plus a narrow SELL config per (height, σ) pair.
        let shapes = BlockShape::search_space().len();
        let sizes = BCSD_SIZES.len();
        let sell: usize = SELL_HEIGHTS.iter().map(|&c| sell_sigmas(c).len()).sum();
        let ext_per_imp = 1 + 2 * (shapes + sizes) + 2 * sell;
        assert_eq!(
            Config::enumerate_extended(false).len(),
            Config::enumerate(false).len() + ext_per_imp
        );
        assert_eq!(
            Config::enumerate_extended(true).len(),
            Config::enumerate(true).len() + 2 * ext_per_imp
        );
    }

    #[test]
    fn extended_space_contains_base_space_as_prefix() {
        let base = Config::enumerate(true);
        let ext = Config::enumerate_extended(true);
        assert_eq!(&ext[..base.len()], &base[..]);
    }

    #[test]
    fn substats_bytes_match_materialized_formats() {
        let csr = fixture();
        for config in Config::enumerate_extended(true) {
            let stats = config.substats(&csr);
            let built = config.build(&csr);
            let ws_est: usize = stats.iter().map(|s| s.ws_bytes).sum();
            assert_eq!(
                ws_est,
                built.working_set_bytes(),
                "ws mismatch for {config}"
            );
        }
    }

    #[test]
    fn substats_block_counts_match_materialized_formats() {
        let csr = fixture();
        for config in Config::enumerate_extended(false) {
            let stats = config.substats(&csr);
            match config.build(&csr) {
                BuiltFormat::Csr(m) => assert_eq!(stats[0].nb, m.nnz()),
                BuiltFormat::CsrDelta(m) => assert_eq!(stats[0].nb, m.nnz(), "{config}"),
                BuiltFormat::Bcsr(m) => assert_eq!(stats[0].nb, m.n_blocks(), "{config}"),
                BuiltFormat::Bcsd(m) => assert_eq!(stats[0].nb, m.n_blocks(), "{config}"),
                BuiltFormat::BcsrDec(m) => {
                    assert_eq!(stats[0].nb, m.main().n_blocks(), "{config}");
                    assert_eq!(stats[1].nb, m.rest().nnz(), "{config}");
                }
                BuiltFormat::BcsdDec(m) => {
                    assert_eq!(stats[0].nb, m.main().n_blocks(), "{config}");
                    assert_eq!(stats[1].nb, m.rest().nnz(), "{config}");
                }
                BuiltFormat::BcsrMasked(m) => assert_eq!(stats[0].nb, m.n_blocks(), "{config}"),
                BuiltFormat::BcsdMasked(m) => assert_eq!(stats[0].nb, m.n_blocks(), "{config}"),
                BuiltFormat::SellCSigma(m) => assert_eq!(stats[0].nb, m.n_blocks(), "{config}"),
            }
        }
    }

    #[test]
    fn built_formats_all_multiply_correctly() {
        let csr = fixture();
        let x: Vec<f64> = (0..31).map(|i| 1.0 + (i % 3) as f64).collect();
        let want = csr.spmv(&x);
        for config in Config::enumerate_extended(true) {
            let built = config.build(&csr);
            let got = built.spmv(&x);
            for (a, g) in want.iter().zip(&got) {
                assert!((a - g).abs() < 1e-9, "{config}");
            }
        }
    }

    #[test]
    fn substats_multi_bytes_match_materialized_formats() {
        // Matrix traffic once plus vector traffic k times must reproduce
        // the materialized formats' working_set_bytes_multi exactly.
        let csr = fixture();
        for config in Config::enumerate_extended(true) {
            let stats = config.substats(&csr);
            let built = config.build(&csr);
            for k in [1usize, 2, 4, 9] {
                let est: usize = stats
                    .iter()
                    .map(|s| s.ws_bytes - s.vec_bytes + k * s.vec_bytes)
                    .sum();
                assert_eq!(
                    est,
                    built.working_set_bytes_multi(k),
                    "multi ws mismatch for {config} k={k}"
                );
            }
        }
    }

    #[test]
    fn built_formats_all_multiply_multi_correctly() {
        let csr = fixture();
        let k = 3;
        let x: Vec<f64> = (0..31 * k).map(|i| 1.0 + (i % 5) as f64).collect();
        for config in Config::enumerate_extended(true) {
            let built = config.build(&csr);
            let got = built.spmv_multi(&x, k);
            for t in 0..k {
                let want = built.spmv(&x[t * 31..(t + 1) * 31]);
                assert_eq!(want, &got[t * 29..(t + 1) * 29], "{config} col {t}");
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let configs = Config::enumerate_extended(true);
        let mut labels: Vec<String> = configs.iter().map(|c| c.to_string()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), configs.len());
    }

    #[test]
    fn narrow_and_delta_substats_shrink_the_working_set() {
        let csr = fixture();
        let shape = BlockShape::new(2, 2).unwrap();
        let pairs = [
            (BlockConfig::BcsrNarrow(shape), BlockConfig::Bcsr(shape)),
            (BlockConfig::BcsdNarrow(4), BlockConfig::Bcsd(4)),
            (BlockConfig::CsrDelta, BlockConfig::Csr),
        ];
        for (narrow, wide) in pairs {
            let imp = KernelImpl::Scalar;
            let n = Config { block: narrow, imp }.substats(&csr)[0].ws_bytes;
            let w = Config { block: wide, imp }.substats(&csr)[0].ws_bytes;
            assert!(n < w, "{narrow:?}: {n} !< {w}");
        }
    }

    #[test]
    fn masked_substats_shrink_the_working_set_on_sparse_blocks() {
        // The fixture's blocks are mostly partial, so dropping padded
        // values must outweigh the one mask byte per block.
        let csr = fixture();
        let imp = KernelImpl::Scalar;
        let shape = BlockShape::new(2, 4).unwrap();
        let m = Config {
            block: BlockConfig::BcsrMasked(shape),
            imp,
        }
        .substats(&csr)[0]
            .ws_bytes;
        let p = Config {
            block: BlockConfig::Bcsr(shape),
            imp,
        }
        .substats(&csr)[0]
            .ws_bytes;
        assert!(m < p, "masked {m} !< padded {p}");
    }

    #[test]
    fn sell_substats_charge_padding_and_narrow_indices() {
        let csr = fixture();
        let imp = KernelImpl::Scalar;
        for c in SELL_HEIGHTS {
            let ws = |block: BlockConfig| Config { block, imp }.substats(&csr)[0].ws_bytes;
            let wide = ws(BlockConfig::SellCSigma { c, sigma: 1 });
            assert!(ws(BlockConfig::SellCSigmaNarrow { c, sigma: 1 }) < wide, "c={c}");
            // The global sort can only shrink the padded working set.
            let sorted = ws(BlockConfig::SellCSigma {
                c,
                sigma: SELL_SIGMA_FULL,
            });
            assert!(sorted <= wide, "c={c}");
        }
    }

    #[test]
    fn narrow_configs_fall_back_to_full_width_on_wide_matrices() {
        let n_cols = IndexWidth::MAX_U16_COLS + 1;
        let coo = Coo::from_triplets(
            2,
            n_cols,
            vec![(0, 0, 1.0), (0, n_cols - 1, 2.0), (1, 2, 4.0)],
        )
        .unwrap();
        let csr = Csr::from_coo(&coo);
        let shape = BlockShape::new(1, 2).unwrap();
        let imp = KernelImpl::Scalar;
        let narrow = Config {
            block: BlockConfig::BcsrNarrow(shape),
            imp,
        };
        let wide = Config {
            block: BlockConfig::Bcsr(shape),
            imp,
        };
        assert_eq!(
            narrow.substats(&csr)[0].ws_bytes,
            wide.substats(&csr)[0].ws_bytes
        );
        assert_eq!(
            narrow.build(&csr).working_set_bytes(),
            wide.build(&csr).working_set_bytes()
        );
    }

    #[test]
    fn decomposed_substats_have_two_parts() {
        let csr = fixture();
        let c = Config {
            block: BlockConfig::BcsrDec(BlockShape::new(2, 2).unwrap()),
            imp: KernelImpl::Scalar,
        };
        let stats = c.substats(&csr);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[1].key, KernelKey::Csr);
    }
}
