#![warn(missing_docs)]

//! Analytic performance models for blocked SpMV — the paper's core
//! contribution (§IV).
//!
//! Three models predict the execution time of one SpMV for a candidate
//! (format, block shape, kernel implementation):
//!
//! * [`Model::Mem`] — the classic streaming bound of Gropp et al.:
//!   `t = ws / BW` (eq. 1);
//! * [`Model::MemComp`] — adds the computational part:
//!   `t = Σ ws_i/BW + nb_i · t_b` (eq. 2);
//! * [`Model::Overlap`] — scales the computational part by the profiled
//!   *non-overlapping factor* `nof`, the fraction of compute the
//!   hardware prefetcher cannot hide behind memory transfers (eq. 3–4).
//!
//! The workflow:
//!
//! 1. [`MachineProfile::detect`] measures STREAM bandwidth and reads the
//!    cache geometry (once per machine);
//! 2. [`profile_kernels`] times every block kernel on an L1-resident
//!    dense matrix (`t_b`) and an out-of-cache dense matrix (`nof`) —
//!    once per machine and precision;
//! 3. [`select()`] ranks the whole configuration space for a given matrix
//!    using only `O(nnz)` structure statistics (no format is
//!    materialized) and returns the predicted-fastest configuration.
//!
//! For batched right-hand sides (SpMM), [`Model::predict_multi`] extends
//! each model to `k`-vector calls — matrix traffic is paid once, vector
//! traffic and compute `k` times — and [`select_multi`] ranks
//! (format, block, implementation, `k`) candidates by predicted time per
//! vector.
//!
//! ```no_run
//! use spmv_gen::GenSpec;
//! use spmv_model::{profile_kernels, select, MachineProfile, Model, ProfileOptions};
//!
//! let machine = MachineProfile::detect();
//! let profile = profile_kernels::<f64>(&machine, &ProfileOptions::default());
//! let matrix = GenSpec::FemBlocks { nodes: 10_000, dof: 3, neighbors: 8 }.build(42);
//! let best = select(Model::Overlap, &matrix, &machine, &profile, true);
//! println!("run this matrix as {} (predicted {:.3} ms/SpMV)",
//!          best.config, best.predicted * 1e3);
//! ```

pub mod config;
pub mod heuristic;
pub mod latency;
pub mod machine;
pub mod models;
pub mod multicore;
pub mod persist;
pub mod profile;
pub mod select;
pub mod timing;

pub use config::{BlockConfig, BuiltFormat, Config, KernelKey, SubStat};
pub use heuristic::{profile_dense, select_bcsr_shape, DenseProfile};
pub use latency::{
    input_vector_miss_estimate, measure_latency, predict_overlap_lat, LatencyProfile,
};
pub use machine::{stream_triad_bandwidth, stream_triad_bandwidth_with, MachineProfile};
pub use models::Model;
pub use multicore::{
    predict_threaded, predict_threaded_hierarchy, predicted_saturation_point, strip_extents,
    BandwidthHierarchy, DomainBandwidth,
};
pub use persist::{load_profile, read_profile, save_profile, write_profile};
pub use profile::{profile_kernels, profile_keys, BlockTimes, KernelProfile, ProfileOptions};
pub use select::{
    candidate_configs, candidate_configs_extended, rank, rank_extended_measured, rank_multi,
    select, select_extended, select_extended_measured, select_multi, select_multi_extended,
    select_multi_extended_measured, Candidate, MeasuredOverrides, MultiCandidate,
};
