//! Multicore model adaptation — the paper's second future-work
//! direction ("consider the adaptation of these models on multicore
//! platforms", §VI).
//!
//! The threaded execution model matches `spmv-parallel`: the matrix is
//! split row-wise into `threads` contiguous, stored-element-balanced
//! strips that run concurrently. Two effects change the prediction:
//!
//! 1. **bandwidth sharing** — the strips stream simultaneously from the
//!    same memory controller, so each strip sees `BW / threads`
//!    (pessimistic for low thread counts that cannot saturate the bus
//!    alone; exact once the bus is the bottleneck, which is the SpMV
//!    regime the paper targets);
//! 2. **synchronization at the end** — the SpMV finishes when the
//!    slowest strip does, so the prediction is a `max` over strips
//!    rather than a sum.
//!
//! [`predict_threaded`] evaluates any of the three §IV models under this
//! execution model; with `threads == 1` it reduces exactly to the
//! single-threaded prediction.
//!
//! The `max` in effect assumes the static weight balance is *perfect* —
//! every strip is predicted from its own structure, but runtime effects
//! (cache topology, pinning, SMT siblings, OS noise) skew real strips
//! further apart. The persistent pool in `spmv-parallel`
//! (`SpmvPool::measured_strip_seconds`) reports the *measured* median
//! time per strip; [`predict_threaded_measured`] folds that observed
//! skew back into the prediction via [`imbalance_factor`], replacing the
//! model's structural `max` with measured imbalance.

use crate::config::Config;
use crate::machine::MachineProfile;
use crate::models::Model;
use crate::profile::KernelProfile;
use spmv_core::{Csr, MatrixShape, Scalar};

/// Splits row indices into `threads` contiguous strips balanced by
/// nonzeros — the model-side mirror of `spmv_parallel::partition_units`
/// over `csr_unit_weights`, re-implemented here to keep the model
/// crate's dependencies minimal.
///
/// Public so the duplication is testable: `tests/numa_partition.rs`
/// pins this function differentially against the runtime splitter over
/// a seeded matrix corpus, so the two copies cannot drift apart
/// silently. Per-strip predictions
/// ([`predict_threaded`]/[`predict_threaded_hierarchy`]) are only
/// meaningful because these extents match the strips the pool actually
/// runs.
pub fn strip_extents<T: Scalar>(csr: &Csr<T>, threads: usize) -> Vec<core::ops::Range<usize>> {
    let total = csr.nnz() as u64;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc = 0u64;
    for p in 0..threads {
        let mut end = start;
        if p == threads - 1 {
            end = csr.n_rows();
        } else {
            let target = total * (p as u64 + 1) / threads as u64;
            while end < csr.n_rows() && acc < target {
                acc += csr.row_nnz(end) as u64;
                end += 1;
            }
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// Predicted seconds per SpMV for `config` on `csr` executed with
/// `threads` bandwidth-sharing threads.
pub fn predict_threaded<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
) -> f64 {
    assert!(threads > 0);
    if threads == 1 {
        return model.predict(&config.substats(csr), machine, profile);
    }
    let shared = MachineProfile {
        bandwidth: machine.bandwidth / threads as f64,
        ..*machine
    };
    strip_extents(csr, threads)
        .into_iter()
        .map(|rows| {
            let strip = csr.row_slice(rows);
            model.predict(&config.substats(&strip), &shared, profile)
        })
        .fold(0.0, f64::max)
}

/// Load-imbalance factor of a measured per-strip timing profile: the
/// slowest strip's time over the mean strip time, clamped to ≥ 1.
///
/// `1.0` means perfectly balanced strips (and is returned for empty or
/// degenerate profiles); `2.0` means the critical strip ran twice as
/// long as the average, so half the aggregate compute capacity was idle
/// at the barrier. Feed this from
/// `spmv_parallel::SpmvPool::measured_strip_seconds`.
pub fn imbalance_factor(per_strip_seconds: &[f64]) -> f64 {
    if per_strip_seconds.is_empty() {
        return 1.0;
    }
    let max = per_strip_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean = per_strip_seconds.iter().sum::<f64>() / per_strip_seconds.len() as f64;
    if mean <= 0.0 || !mean.is_finite() {
        1.0
    } else {
        (max / mean).max(1.0)
    }
}

/// Predicted seconds per SpMV like [`predict_threaded`], but scaled by
/// the **measured** per-strip imbalance instead of the structural `max`
/// over predicted strips.
///
/// The balanced-core prediction is the *mean* over per-strip predictions
/// (what a perfectly level execution would cost per core under shared
/// bandwidth); multiplying by [`imbalance_factor`] restores the barrier
/// wait the pool actually observed. With fewer than two measured strips
/// — or `threads == 1` — this degrades to [`predict_threaded`].
pub fn predict_threaded_measured<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
    per_strip_seconds: &[f64],
) -> f64 {
    assert!(threads > 0);
    if threads == 1 || per_strip_seconds.len() < 2 {
        return predict_threaded(model, csr, config, threads, machine, profile);
    }
    let shared = MachineProfile {
        bandwidth: machine.bandwidth / threads as f64,
        ..*machine
    };
    let mean_pred = strip_extents(csr, threads)
        .into_iter()
        .map(|rows| {
            let strip = csr.row_slice(rows);
            model.predict(&config.substats(&strip), &shared, profile)
        })
        .sum::<f64>()
        / threads as f64;
    mean_pred * imbalance_factor(per_strip_seconds)
}

/// The bandwidths one memory domain (NUMA node) offers, in bytes/sec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainBandwidth {
    /// Sustainable stream bandwidth for threads pinned to this domain
    /// reading pages that live on it (STREAM triad, first-touched and
    /// run on the same node).
    pub local: f64,
    /// Sustainable stream bandwidth for a thread on *another* domain
    /// reading pages that live here — the interconnect-limited path
    /// (arrays first-touched here, triad run on a remote node).
    pub remote: f64,
}

/// Per-domain bandwidth map for NUMA-aware threaded predictions.
///
/// The flat model in [`predict_threaded`] shares one `BW` across all
/// threads; past one socket that undercharges remote strips (which pay
/// the interconnect) and overcharges domain-spread placements (each
/// controller serves only its own strips). This hierarchy keeps one
/// [`DomainBandwidth`] per domain, indexed like
/// `spmv_parallel::Topology::domains`; measure it with
/// `spmv_tune::MeasuredSampler::measure_hierarchy` or build it from
/// STREAM numbers directly.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthHierarchy {
    domains: Vec<DomainBandwidth>,
}

impl BandwidthHierarchy {
    /// One flat domain whose local and remote paths are the same bus —
    /// the paper's single-socket testbed. With this hierarchy,
    /// [`predict_threaded_hierarchy`] reproduces [`predict_threaded`]
    /// bit for bit (same strip extents, same `bw / threads` division).
    pub fn flat(bandwidth: f64) -> Self {
        BandwidthHierarchy {
            domains: vec![DomainBandwidth {
                local: bandwidth,
                remote: bandwidth,
            }],
        }
    }

    /// An explicit per-domain map, in node order.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is empty.
    pub fn new(domains: Vec<DomainBandwidth>) -> Self {
        assert!(!domains.is_empty(), "hierarchy needs at least one domain");
        BandwidthHierarchy { domains }
    }

    /// Number of memory domains (≥ 1).
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// The per-domain bandwidths, in node order.
    pub fn domains(&self) -> &[DomainBandwidth] {
        &self.domains
    }

    /// The bandwidth one strip sees: its traffic is charged to the
    /// domain holding its pages — the local path when the executing
    /// thread lives there too, the interconnect otherwise — divided by
    /// the `sharers` strips streaming from that same controller.
    pub fn strip_bandwidth(&self, exec_domain: usize, pages_domain: usize, sharers: usize) -> f64 {
        let d = &self.domains[pages_domain];
        let link = if exec_domain == pages_domain {
            d.local
        } else {
            d.remote
        };
        link / sharers.max(1) as f64
    }
}

/// Predicted seconds per SpMV under a per-domain bandwidth hierarchy.
///
/// Strip `s` (extents from [`strip_extents`], the same split the pool
/// runs) executes on domain `exec_domains[s]` — defaulting to the
/// round-robin deal `s % n_domains` that `PinPolicy::Domains` uses —
/// and its matrix pages live on `pages_on` when given (no first-touch:
/// everything on one node, the remote-access regime) or on the strip's
/// own execution domain otherwise (first-touch placement). Each strip
/// is charged [`BandwidthHierarchy::strip_bandwidth`] for the domain
/// its pages live on, and the SpMV finishes when the slowest strip does.
///
/// With [`BandwidthHierarchy::flat`]`(machine.bandwidth)` this equals
/// [`predict_threaded`] exactly, threads and strips alike.
#[allow(clippy::too_many_arguments)]
pub fn predict_threaded_hierarchy<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
    hierarchy: &BandwidthHierarchy,
    exec_domains: Option<&[usize]>,
    pages_on: Option<usize>,
) -> f64 {
    assert!(threads > 0);
    let nd = hierarchy.n_domains();
    let exec: Vec<usize> = match exec_domains {
        Some(e) => {
            assert_eq!(e.len(), threads, "one execution domain per strip");
            e.to_vec()
        }
        None => (0..threads).map(|s| s % nd).collect(),
    };
    assert!(exec.iter().all(|&d| d < nd), "execution domain out of range");
    if let Some(p) = pages_on {
        assert!(p < nd, "pages domain out of range");
    }
    let pages: Vec<usize> = exec.iter().map(|&e| pages_on.unwrap_or(e)).collect();
    let mut sharers = vec![0usize; nd];
    for &p in &pages {
        sharers[p] += 1;
    }
    if threads == 1 {
        // Mirror predict_threaded's single-thread form (whole matrix,
        // no slicing) so a flat hierarchy is bitwise-identical to it:
        // one strip alone on its controller divides by 1, which is
        // exact.
        let eff = MachineProfile {
            bandwidth: hierarchy.strip_bandwidth(exec[0], pages[0], sharers[pages[0]]),
            ..*machine
        };
        return model.predict(&config.substats(csr), &eff, profile);
    }
    strip_extents(csr, threads)
        .into_iter()
        .enumerate()
        .map(|(s, rows)| {
            let eff = MachineProfile {
                bandwidth: hierarchy.strip_bandwidth(exec[s], pages[s], sharers[pages[s]]),
                ..*machine
            };
            let strip = csr.row_slice(rows);
            model.predict(&config.substats(&strip), &eff, profile)
        })
        .fold(0.0, f64::max)
}

/// The thread count at which adding threads stops helping according to
/// the model: the smallest `t` in `1..=max_threads` minimizing the
/// predicted time (SpMV saturates the memory bus quickly, so this is
/// often below the core count — the phenomenon Figure 2's flat scaling
/// reflects).
pub fn predicted_saturation_point<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    max_threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
) -> usize {
    (1..=max_threads.max(1))
        .min_by(|&a, &b| {
            let ta = predict_threaded(model, csr, config, a, machine, profile);
            let tb = predict_threaded(model, csr, config, b, machine, profile);
            ta.total_cmp(&tb)
        })
        .expect("non-empty range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use spmv_gen::GenSpec;

    fn machine() -> MachineProfile {
        MachineProfile {
            bandwidth: 4e9,
            l1_bytes: 32 * 1024,
            llc_bytes: 4 << 20,
        }
    }

    #[test]
    fn one_thread_equals_sequential_prediction() {
        let csr = GenSpec::Stencil2d { nx: 30, ny: 30 }.build(1);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        for model in Model::ALL {
            let seq = model.predict(&Config::CSR.substats(&csr), &machine(), &profile);
            let par = predict_threaded(model, &csr, &Config::CSR, 1, &machine(), &profile);
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn strips_cover_all_rows() {
        let csr = GenSpec::Random {
            n: 101,
            m: 50,
            nnz_per_row: 3,
        }
        .build(2);
        for threads in 1..6 {
            let strips = strip_extents(&csr, threads);
            assert_eq!(strips.len(), threads);
            assert_eq!(strips[0].start, 0);
            assert_eq!(strips.last().unwrap().end, 101);
        }
    }

    #[test]
    fn pure_streaming_does_not_scale_under_shared_bandwidth() {
        // MEM: per-strip ws ~ total/t, but bandwidth is BW/t, so the
        // predicted time stays ~constant — the memory wall.
        let csr = GenSpec::Random {
            n: 4_000,
            m: 4_000,
            nnz_per_row: 8,
        }
        .build(3);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let t1 = predict_threaded(Model::Mem, &csr, &Config::CSR, 1, &machine(), &profile);
        let t4 = predict_threaded(Model::Mem, &csr, &Config::CSR, 4, &machine(), &profile);
        // t4 can even exceed t1 slightly (per-strip vector traffic), but
        // must be nowhere near a 4x speedup.
        assert!(t4 > 0.6 * t1, "MEM predicted super-scaling: {t1} -> {t4}");
    }

    #[test]
    fn compute_bound_work_scales_under_memcomp() {
        // Give blocks a huge t_b: compute dominates, and compute *does*
        // parallelize (each strip runs its own blocks).
        let csr = GenSpec::Random {
            n: 2_000,
            m: 2_000,
            nnz_per_row: 8,
        }
        .build(4);
        let profile = KernelProfile::uniform(1e-6, 1.0);
        let t1 = predict_threaded(Model::MemComp, &csr, &Config::CSR, 1, &machine(), &profile);
        let t4 = predict_threaded(Model::MemComp, &csr, &Config::CSR, 4, &machine(), &profile);
        assert!(
            t4 < 0.35 * t1,
            "compute-bound prediction should scale: {t1} -> {t4}"
        );
    }

    #[test]
    fn imbalance_factor_basics() {
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0.5]), 1.0);
        assert_eq!(imbalance_factor(&[1.0, 1.0, 1.0, 1.0]), 1.0);
        // One strip at 2x the others: max/mean = 2 / 1.25 = 1.6.
        let f = imbalance_factor(&[1.0, 1.0, 1.0, 2.0]);
        assert!((f - 1.6).abs() < 1e-12, "{f}");
        // Degenerate profiles never deflate a prediction.
        assert_eq!(imbalance_factor(&[0.0, 0.0]), 1.0);
        assert!(imbalance_factor(&[3.0, 1.0]) >= 1.0);
    }

    #[test]
    fn measured_prediction_reduces_to_structural_when_balanced() {
        let csr = GenSpec::Stencil2d { nx: 24, ny: 24 }.build(7);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        for model in Model::ALL {
            // Perfectly balanced measurement: mean == max over strips,
            // so the measured form must not exceed the structural form
            // (which takes the max over per-strip predictions).
            let structural =
                predict_threaded(model, &csr, &Config::CSR, 4, &machine(), &profile);
            let balanced = predict_threaded_measured(
                model,
                &csr,
                &Config::CSR,
                4,
                &machine(),
                &profile,
                &[1.0, 1.0, 1.0, 1.0],
            );
            assert!(
                balanced <= structural + 1e-12,
                "{model:?}: balanced {balanced} > structural {structural}"
            );
            assert!(balanced > 0.0);
        }
    }

    #[test]
    fn measured_imbalance_inflates_prediction() {
        let csr = GenSpec::Stencil2d { nx: 24, ny: 24 }.build(8);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let balanced = predict_threaded_measured(
            Model::Overlap,
            &csr,
            &Config::CSR,
            2,
            &machine(),
            &profile,
            &[1.0, 1.0],
        );
        let skewed = predict_threaded_measured(
            Model::Overlap,
            &csr,
            &Config::CSR,
            2,
            &machine(),
            &profile,
            &[1.0, 3.0],
        );
        // max/mean = 3/2: the skewed profile costs exactly 1.5x more.
        assert!((skewed / balanced - 1.5).abs() < 1e-9);
    }

    #[test]
    fn measured_prediction_falls_back_without_samples() {
        let csr = GenSpec::Stencil2d { nx: 16, ny: 16 }.build(9);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let structural = predict_threaded(Model::Mem, &csr, &Config::CSR, 2, &machine(), &profile);
        let fallback = predict_threaded_measured(
            Model::Mem,
            &csr,
            &Config::CSR,
            2,
            &machine(),
            &profile,
            &[],
        );
        assert_eq!(structural, fallback);
    }

    #[test]
    fn flat_hierarchy_reproduces_predict_threaded_exactly() {
        let csr = GenSpec::Random {
            n: 500,
            m: 500,
            nnz_per_row: 6,
        }
        .build(11);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let h = BandwidthHierarchy::flat(machine().bandwidth);
        for model in Model::ALL {
            for threads in 1..=6 {
                let flat = predict_threaded(model, &csr, &Config::CSR, threads, &machine(), &profile);
                let hier = predict_threaded_hierarchy(
                    model, &csr, &Config::CSR, threads, &machine(), &profile, &h, None, None,
                );
                assert_eq!(flat, hier, "{model:?} t={threads}");
            }
        }
    }

    #[test]
    fn remote_pages_cost_more_than_first_touch() {
        // Two domains; interconnect at a third of local bandwidth. All
        // pages on node 0 (no first-touch) must predict slower than
        // pages following their strips.
        let csr = GenSpec::Random {
            n: 4_000,
            m: 4_000,
            nnz_per_row: 8,
        }
        .build(12);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let h = BandwidthHierarchy::new(vec![
            DomainBandwidth {
                local: 4e9,
                remote: 4e9 / 3.0,
            };
            2
        ]);
        let first_touch = predict_threaded_hierarchy(
            Model::Mem, &csr, &Config::CSR, 4, &machine(), &profile, &h, None, None,
        );
        let all_on_zero = predict_threaded_hierarchy(
            Model::Mem, &csr, &Config::CSR, 4, &machine(), &profile, &h, None, Some(0),
        );
        assert!(
            all_on_zero > 1.2 * first_touch,
            "remote pages should be penalized: {first_touch} vs {all_on_zero}"
        );
    }

    #[test]
    fn two_controllers_beat_one_shared_bus() {
        // Same aggregate silicon, split over two domains: a streaming
        // kernel that cannot scale on one bus (the memory wall test
        // above) should roughly halve with first-touch domain spread.
        let csr = GenSpec::Random {
            n: 4_000,
            m: 4_000,
            nnz_per_row: 8,
        }
        .build(13);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let one = BandwidthHierarchy::flat(4e9);
        let two = BandwidthHierarchy::new(vec![
            DomainBandwidth {
                local: 4e9,
                remote: 1e9,
            };
            2
        ]);
        let shared = predict_threaded_hierarchy(
            Model::Mem, &csr, &Config::CSR, 4, &machine(), &profile, &one, None, None,
        );
        let spread = predict_threaded_hierarchy(
            Model::Mem, &csr, &Config::CSR, 4, &machine(), &profile, &two, None, None,
        );
        assert!(
            spread < 0.7 * shared,
            "domain spread should relieve the bus: {shared} -> {spread}"
        );
    }

    #[test]
    fn strip_bandwidth_charges_the_pages_domain() {
        let h = BandwidthHierarchy::new(vec![
            DomainBandwidth {
                local: 8e9,
                remote: 2e9,
            },
            DomainBandwidth {
                local: 6e9,
                remote: 1e9,
            },
        ]);
        assert_eq!(h.strip_bandwidth(0, 0, 1), 8e9);
        assert_eq!(h.strip_bandwidth(0, 0, 2), 4e9);
        // Executing on 0, pages on 1: domain 1's interconnect path.
        assert_eq!(h.strip_bandwidth(0, 1, 1), 1e9);
        assert_eq!(h.strip_bandwidth(1, 0, 2), 1e9);
        // Degenerate sharer count never divides by zero.
        assert_eq!(h.strip_bandwidth(0, 0, 0), 8e9);
    }

    #[test]
    fn saturation_point_is_low_for_streaming_kernels() {
        let csr = GenSpec::Random {
            n: 4_000,
            m: 4_000,
            nnz_per_row: 8,
        }
        .build(5);
        let profile = KernelProfile::uniform(1e-10, 0.1);
        let sat = predicted_saturation_point(
            Model::Overlap,
            &csr,
            &Config::CSR,
            8,
            &machine(),
            &profile,
        );
        assert!(sat <= 4, "streaming SpMV should saturate early, got {sat}");
    }
}
