//! Multicore model adaptation — the paper's second future-work
//! direction ("consider the adaptation of these models on multicore
//! platforms", §VI).
//!
//! The threaded execution model matches `spmv-parallel`: the matrix is
//! split row-wise into `threads` contiguous, stored-element-balanced
//! strips that run concurrently. Two effects change the prediction:
//!
//! 1. **bandwidth sharing** — the strips stream simultaneously from the
//!    same memory controller, so each strip sees `BW / threads`
//!    (pessimistic for low thread counts that cannot saturate the bus
//!    alone; exact once the bus is the bottleneck, which is the SpMV
//!    regime the paper targets);
//! 2. **synchronization at the end** — the SpMV finishes when the
//!    slowest strip does, so the prediction is a `max` over strips
//!    rather than a sum.
//!
//! [`predict_threaded`] evaluates any of the three §IV models under this
//! execution model; with `threads == 1` it reduces exactly to the
//! single-threaded prediction.
//!
//! The `max` in effect assumes the static weight balance is *perfect* —
//! every strip is predicted from its own structure, but runtime effects
//! (cache topology, pinning, SMT siblings, OS noise) skew real strips
//! further apart. The persistent pool in `spmv-parallel`
//! (`SpmvPool::measured_strip_seconds`) reports the *measured* median
//! time per strip; [`predict_threaded_measured`] folds that observed
//! skew back into the prediction via [`imbalance_factor`], replacing the
//! model's structural `max` with measured imbalance.

use crate::config::Config;
use crate::machine::MachineProfile;
use crate::models::Model;
use crate::profile::KernelProfile;
use spmv_core::{Csr, MatrixShape, Scalar};

/// Splits row indices into `threads` contiguous strips balanced by
/// nonzeros (the model-side mirror of `spmv_parallel::partition_units`;
/// re-implemented here to keep the model crate's dependencies minimal
/// and because the model only needs approximate strip extents).
fn strip_rows<T: Scalar>(csr: &Csr<T>, threads: usize) -> Vec<core::ops::Range<usize>> {
    let total = csr.nnz() as u64;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut acc = 0u64;
    for p in 0..threads {
        let mut end = start;
        if p == threads - 1 {
            end = csr.n_rows();
        } else {
            let target = total * (p as u64 + 1) / threads as u64;
            while end < csr.n_rows() && acc < target {
                acc += csr.row_nnz(end) as u64;
                end += 1;
            }
        }
        out.push(start..end);
        start = end;
    }
    out
}

/// Predicted seconds per SpMV for `config` on `csr` executed with
/// `threads` bandwidth-sharing threads.
pub fn predict_threaded<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
) -> f64 {
    assert!(threads > 0);
    if threads == 1 {
        return model.predict(&config.substats(csr), machine, profile);
    }
    let shared = MachineProfile {
        bandwidth: machine.bandwidth / threads as f64,
        ..*machine
    };
    strip_rows(csr, threads)
        .into_iter()
        .map(|rows| {
            let strip = csr.row_slice(rows);
            model.predict(&config.substats(&strip), &shared, profile)
        })
        .fold(0.0, f64::max)
}

/// Load-imbalance factor of a measured per-strip timing profile: the
/// slowest strip's time over the mean strip time, clamped to ≥ 1.
///
/// `1.0` means perfectly balanced strips (and is returned for empty or
/// degenerate profiles); `2.0` means the critical strip ran twice as
/// long as the average, so half the aggregate compute capacity was idle
/// at the barrier. Feed this from
/// `spmv_parallel::SpmvPool::measured_strip_seconds`.
pub fn imbalance_factor(per_strip_seconds: &[f64]) -> f64 {
    if per_strip_seconds.is_empty() {
        return 1.0;
    }
    let max = per_strip_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean = per_strip_seconds.iter().sum::<f64>() / per_strip_seconds.len() as f64;
    if mean <= 0.0 || !mean.is_finite() {
        1.0
    } else {
        (max / mean).max(1.0)
    }
}

/// Predicted seconds per SpMV like [`predict_threaded`], but scaled by
/// the **measured** per-strip imbalance instead of the structural `max`
/// over predicted strips.
///
/// The balanced-core prediction is the *mean* over per-strip predictions
/// (what a perfectly level execution would cost per core under shared
/// bandwidth); multiplying by [`imbalance_factor`] restores the barrier
/// wait the pool actually observed. With fewer than two measured strips
/// — or `threads == 1` — this degrades to [`predict_threaded`].
pub fn predict_threaded_measured<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
    per_strip_seconds: &[f64],
) -> f64 {
    assert!(threads > 0);
    if threads == 1 || per_strip_seconds.len() < 2 {
        return predict_threaded(model, csr, config, threads, machine, profile);
    }
    let shared = MachineProfile {
        bandwidth: machine.bandwidth / threads as f64,
        ..*machine
    };
    let mean_pred = strip_rows(csr, threads)
        .into_iter()
        .map(|rows| {
            let strip = csr.row_slice(rows);
            model.predict(&config.substats(&strip), &shared, profile)
        })
        .sum::<f64>()
        / threads as f64;
    mean_pred * imbalance_factor(per_strip_seconds)
}

/// The thread count at which adding threads stops helping according to
/// the model: the smallest `t` in `1..=max_threads` minimizing the
/// predicted time (SpMV saturates the memory bus quickly, so this is
/// often below the core count — the phenomenon Figure 2's flat scaling
/// reflects).
pub fn predicted_saturation_point<T: Scalar>(
    model: Model,
    csr: &Csr<T>,
    config: &Config,
    max_threads: usize,
    machine: &MachineProfile,
    profile: &KernelProfile,
) -> usize {
    (1..=max_threads.max(1))
        .min_by(|&a, &b| {
            let ta = predict_threaded(model, csr, config, a, machine, profile);
            let tb = predict_threaded(model, csr, config, b, machine, profile);
            ta.total_cmp(&tb)
        })
        .expect("non-empty range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::KernelProfile;
    use spmv_gen::GenSpec;

    fn machine() -> MachineProfile {
        MachineProfile {
            bandwidth: 4e9,
            l1_bytes: 32 * 1024,
            llc_bytes: 4 << 20,
        }
    }

    #[test]
    fn one_thread_equals_sequential_prediction() {
        let csr = GenSpec::Stencil2d { nx: 30, ny: 30 }.build(1);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        for model in Model::ALL {
            let seq = model.predict(&Config::CSR.substats(&csr), &machine(), &profile);
            let par = predict_threaded(model, &csr, &Config::CSR, 1, &machine(), &profile);
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn strips_cover_all_rows() {
        let csr = GenSpec::Random {
            n: 101,
            m: 50,
            nnz_per_row: 3,
        }
        .build(2);
        for threads in 1..6 {
            let strips = strip_rows(&csr, threads);
            assert_eq!(strips.len(), threads);
            assert_eq!(strips[0].start, 0);
            assert_eq!(strips.last().unwrap().end, 101);
        }
    }

    #[test]
    fn pure_streaming_does_not_scale_under_shared_bandwidth() {
        // MEM: per-strip ws ~ total/t, but bandwidth is BW/t, so the
        // predicted time stays ~constant — the memory wall.
        let csr = GenSpec::Random {
            n: 4_000,
            m: 4_000,
            nnz_per_row: 8,
        }
        .build(3);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let t1 = predict_threaded(Model::Mem, &csr, &Config::CSR, 1, &machine(), &profile);
        let t4 = predict_threaded(Model::Mem, &csr, &Config::CSR, 4, &machine(), &profile);
        // t4 can even exceed t1 slightly (per-strip vector traffic), but
        // must be nowhere near a 4x speedup.
        assert!(t4 > 0.6 * t1, "MEM predicted super-scaling: {t1} -> {t4}");
    }

    #[test]
    fn compute_bound_work_scales_under_memcomp() {
        // Give blocks a huge t_b: compute dominates, and compute *does*
        // parallelize (each strip runs its own blocks).
        let csr = GenSpec::Random {
            n: 2_000,
            m: 2_000,
            nnz_per_row: 8,
        }
        .build(4);
        let profile = KernelProfile::uniform(1e-6, 1.0);
        let t1 = predict_threaded(Model::MemComp, &csr, &Config::CSR, 1, &machine(), &profile);
        let t4 = predict_threaded(Model::MemComp, &csr, &Config::CSR, 4, &machine(), &profile);
        assert!(
            t4 < 0.35 * t1,
            "compute-bound prediction should scale: {t1} -> {t4}"
        );
    }

    #[test]
    fn imbalance_factor_basics() {
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0.5]), 1.0);
        assert_eq!(imbalance_factor(&[1.0, 1.0, 1.0, 1.0]), 1.0);
        // One strip at 2x the others: max/mean = 2 / 1.25 = 1.6.
        let f = imbalance_factor(&[1.0, 1.0, 1.0, 2.0]);
        assert!((f - 1.6).abs() < 1e-12, "{f}");
        // Degenerate profiles never deflate a prediction.
        assert_eq!(imbalance_factor(&[0.0, 0.0]), 1.0);
        assert!(imbalance_factor(&[3.0, 1.0]) >= 1.0);
    }

    #[test]
    fn measured_prediction_reduces_to_structural_when_balanced() {
        let csr = GenSpec::Stencil2d { nx: 24, ny: 24 }.build(7);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        for model in Model::ALL {
            // Perfectly balanced measurement: mean == max over strips,
            // so the measured form must not exceed the structural form
            // (which takes the max over per-strip predictions).
            let structural =
                predict_threaded(model, &csr, &Config::CSR, 4, &machine(), &profile);
            let balanced = predict_threaded_measured(
                model,
                &csr,
                &Config::CSR,
                4,
                &machine(),
                &profile,
                &[1.0, 1.0, 1.0, 1.0],
            );
            assert!(
                balanced <= structural + 1e-12,
                "{model:?}: balanced {balanced} > structural {structural}"
            );
            assert!(balanced > 0.0);
        }
    }

    #[test]
    fn measured_imbalance_inflates_prediction() {
        let csr = GenSpec::Stencil2d { nx: 24, ny: 24 }.build(8);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let balanced = predict_threaded_measured(
            Model::Overlap,
            &csr,
            &Config::CSR,
            2,
            &machine(),
            &profile,
            &[1.0, 1.0],
        );
        let skewed = predict_threaded_measured(
            Model::Overlap,
            &csr,
            &Config::CSR,
            2,
            &machine(),
            &profile,
            &[1.0, 3.0],
        );
        // max/mean = 3/2: the skewed profile costs exactly 1.5x more.
        assert!((skewed / balanced - 1.5).abs() < 1e-9);
    }

    #[test]
    fn measured_prediction_falls_back_without_samples() {
        let csr = GenSpec::Stencil2d { nx: 16, ny: 16 }.build(9);
        let profile = KernelProfile::uniform(1e-9, 0.5);
        let structural = predict_threaded(Model::Mem, &csr, &Config::CSR, 2, &machine(), &profile);
        let fallback = predict_threaded_measured(
            Model::Mem,
            &csr,
            &Config::CSR,
            2,
            &machine(),
            &profile,
            &[],
        );
        assert_eq!(structural, fallback);
    }

    #[test]
    fn saturation_point_is_low_for_streaming_kernels() {
        let csr = GenSpec::Random {
            n: 4_000,
            m: 4_000,
            nnz_per_row: 8,
        }
        .build(5);
        let profile = KernelProfile::uniform(1e-10, 0.1);
        let sat = predicted_saturation_point(
            Model::Overlap,
            &csr,
            &Config::CSR,
            8,
            &machine(),
            &profile,
        );
        assert!(sat <= 4, "streaming SpMV should saturate early, got {sat}");
    }
}
