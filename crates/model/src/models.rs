//! The three performance models: MEM, MEMCOMP, OVERLAP (§IV).

use crate::config::SubStat;
use crate::machine::MachineProfile;
use crate::profile::KernelProfile;
use core::fmt;

/// A performance model predicting the execution time of one SpMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Model {
    /// Pure streaming model (Gropp et al.): `t = ws / BW` (eq. 1).
    Mem,
    /// Memory + computation, no overlap:
    /// `t = Σ_i ws_i/BW + nb_i · t_b_i` (eq. 2).
    MemComp,
    /// Memory with partially overlapped computation:
    /// `t = Σ_i ws_i/BW + nof_i · nb_i · t_b_i` (eq. 3).
    Overlap,
}

impl Model {
    /// All models, in the paper's presentation order.
    pub const ALL: [Model; 3] = [Model::Mem, Model::MemComp, Model::Overlap];

    /// The paper's label.
    pub const fn label(self) -> &'static str {
        match self {
            Model::Mem => "MEM",
            Model::MemComp => "MEMCOMP",
            Model::Overlap => "OVERLAP",
        }
    }

    /// Predicted execution time in seconds for one SpMV of a
    /// configuration described by its per-submatrix statistics.
    ///
    /// For non-decomposed formats `stats` has one entry and the sums
    /// reduce to the paper's single-matrix forms; CSR enters as the
    /// degenerate 1×1 blocking with `nb = nnz`.
    pub fn predict(
        self,
        stats: &[SubStat],
        machine: &MachineProfile,
        profile: &KernelProfile,
    ) -> f64 {
        stats
            .iter()
            .map(|s| {
                let t_mem = s.ws_bytes as f64 / machine.bandwidth;
                match self {
                    Model::Mem => t_mem,
                    Model::MemComp => {
                        let t = profile.get(s.key);
                        t_mem + s.nb as f64 * t.t_b
                    }
                    Model::Overlap => {
                        let t = profile.get(s.key);
                        t_mem + t.nof * s.nb as f64 * t.t_b
                    }
                }
            })
            .sum()
    }

    /// Predicted execution time in seconds for one `k`-vector
    /// (multi-vector / SpMM) call.
    ///
    /// Extends the single-vector forms to batched right-hand sides: the
    /// matrix arrays (`ws_bytes - vec_bytes`) stream once per call, the
    /// vector traffic (`vec_bytes`) and the computational part both scale
    /// by `k`. With `k = 1` this reduces exactly to [`Model::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn predict_multi(
        self,
        stats: &[SubStat],
        k: usize,
        machine: &MachineProfile,
        profile: &KernelProfile,
    ) -> f64 {
        assert!(k > 0, "predict_multi requires k >= 1");
        stats
            .iter()
            .map(|s| {
                let bytes = (s.ws_bytes - s.vec_bytes) + k * s.vec_bytes;
                let t_mem = bytes as f64 / machine.bandwidth;
                let compute = k as f64 * s.nb as f64;
                match self {
                    Model::Mem => t_mem,
                    Model::MemComp => {
                        let t = profile.get(s.key);
                        t_mem + compute * t.t_b
                    }
                    Model::Overlap => {
                        let t = profile.get(s.key);
                        t_mem + t.nof * compute * t.t_b
                    }
                }
            })
            .sum()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelKey;
    use crate::profile::BlockTimes;

    fn machine() -> MachineProfile {
        MachineProfile {
            bandwidth: 1e9, // 1 GB/s: 1 byte = 1 ns
            l1_bytes: 32 * 1024,
            llc_bytes: 4 << 20,
        }
    }

    fn stat(ws: usize, nb: usize) -> SubStat {
        SubStat {
            ws_bytes: ws,
            vec_bytes: 0,
            nb,
            key: KernelKey::Csr,
        }
    }

    fn stat_vec(ws: usize, vec: usize, nb: usize) -> SubStat {
        SubStat {
            vec_bytes: vec,
            ..stat(ws, nb)
        }
    }

    #[test]
    fn mem_is_ws_over_bw() {
        let p = KernelProfile::uniform(1e-8, 0.5);
        let t = Model::Mem.predict(&[stat(1_000_000, 10)], &machine(), &p);
        assert!((t - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn memcomp_adds_full_compute_time() {
        let p = KernelProfile::uniform(1e-8, 0.5);
        let t = Model::MemComp.predict(&[stat(1_000_000, 1000)], &machine(), &p);
        assert!((t - (1e-3 + 1000.0 * 1e-8)).abs() < 1e-12);
    }

    #[test]
    fn overlap_scales_compute_by_nof() {
        let p = KernelProfile::uniform(1e-8, 0.25);
        let t = Model::Overlap.predict(&[stat(1_000_000, 1000)], &machine(), &p);
        assert!((t - (1e-3 + 0.25 * 1000.0 * 1e-8)).abs() < 1e-12);
    }

    #[test]
    fn model_ordering_mem_below_overlap_below_memcomp() {
        // With nof strictly inside (0, 1) the three predictions are
        // strictly ordered — the property Figure 3 visualizes.
        let p = KernelProfile::uniform(1e-8, 0.5);
        let stats = [stat(500_000, 700)];
        let m = machine();
        let mem = Model::Mem.predict(&stats, &m, &p);
        let ovl = Model::Overlap.predict(&stats, &m, &p);
        let cmp = Model::MemComp.predict(&stats, &m, &p);
        assert!(mem < ovl && ovl < cmp);
    }

    #[test]
    fn decomposed_sums_over_submatrices() {
        let p = KernelProfile::uniform(2e-9, 1.0);
        let stats = [stat(100_000, 10), stat(200_000, 20)];
        let m = machine();
        let whole = Model::MemComp.predict(&stats, &m, &p);
        let parts = Model::MemComp.predict(&stats[..1], &m, &p)
            + Model::MemComp.predict(&stats[1..], &m, &p);
        assert!((whole - parts).abs() < 1e-15);
    }

    #[test]
    fn nof_one_makes_overlap_equal_memcomp() {
        let p = KernelProfile::uniform(1e-8, 1.0);
        let stats = [stat(1_000, 50)];
        let m = machine();
        assert_eq!(
            Model::Overlap.predict(&stats, &m, &p),
            Model::MemComp.predict(&stats, &m, &p)
        );
    }

    #[test]
    fn nof_zero_makes_overlap_equal_mem() {
        let mut p = KernelProfile::uniform(1e-8, 0.0);
        p.set(KernelKey::Csr, BlockTimes { t_b: 1e-8, nof: 0.0 });
        let stats = [stat(1_000, 50)];
        let m = machine();
        assert_eq!(
            Model::Overlap.predict(&stats, &m, &p),
            Model::Mem.predict(&stats, &m, &p)
        );
    }

    #[test]
    fn predict_multi_with_k1_equals_predict() {
        let p = KernelProfile::uniform(1e-8, 0.5);
        let stats = [stat_vec(1_000_000, 16_000, 700)];
        let m = machine();
        for model in Model::ALL {
            assert_eq!(
                model.predict_multi(&stats, 1, &m, &p),
                model.predict(&stats, &m, &p),
                "{model}"
            );
        }
    }

    #[test]
    fn multi_amortizes_matrix_traffic() {
        // 1 MB working set of which 16 KB is vectors: a 4-vector call
        // pays the matrix once, so it must be far cheaper than 4 calls.
        let p = KernelProfile::uniform(1e-8, 0.5);
        let stats = [stat_vec(1_000_000, 16_000, 0)];
        let m = machine();
        let one = Model::Mem.predict(&stats, &m, &p);
        let four = Model::Mem.predict_multi(&stats, 4, &m, &p);
        assert!(four < 4.0 * one);
        // Exact form: (ws - vec + 4*vec)/BW.
        assert!((four - (1_000_000.0 - 16_000.0 + 4.0 * 16_000.0) / 1e9).abs() < 1e-15);
    }

    #[test]
    fn multi_compute_scales_with_k() {
        // Pure-compute check: with vec_bytes == ws_bytes == 0 bytes of
        // matrix amortization at play, the compute term is linear in k.
        let p = KernelProfile::uniform(1e-8, 0.5);
        let stats = [stat(0, 1000)];
        let m = machine();
        let t1 = Model::MemComp.predict_multi(&stats, 1, &m, &p);
        let t8 = Model::MemComp.predict_multi(&stats, 8, &m, &p);
        assert!((t8 - 8.0 * t1).abs() < 1e-15);
        let o1 = Model::Overlap.predict_multi(&stats, 1, &m, &p);
        let o8 = Model::Overlap.predict_multi(&stats, 8, &m, &p);
        assert!((o8 - 8.0 * o1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn predict_multi_rejects_zero_k() {
        let p = KernelProfile::uniform(1e-8, 0.5);
        Model::Mem.predict_multi(&[stat(1_000, 10)], 0, &machine(), &p);
    }

    #[test]
    fn labels() {
        assert_eq!(Model::Mem.label(), "MEM");
        assert_eq!(Model::MemComp.label(), "MEMCOMP");
        assert_eq!(Model::Overlap.label(), "OVERLAP");
    }
}
