//! `sellc`: SELL-C-σ padding sweep across row-length distributions.
//!
//! SELL-C-σ trades index traffic for padding: slices of C rows are
//! padded to the longest row in the slice, and a σ-windowed row sort
//! bounds how unequal the rows in one slice can be. This sweep makes
//! that tradeoff measurable. Three synthetic row-length distributions —
//! *banded* (uniform rows: padding-free best case), *power-law* (a few
//! dominant rows: σ decides everything), and *scatter* (random lengths
//! incl. empty rows: the padding-dominated regime from the ISSUE) — are
//! each swept over C ∈ {2, 4, 8} × σ ∈ {1, C, 64, n}. Per cell it
//! records occupancy, padding per nonzero, matrix bytes per nonzero
//! against the CSR baseline and the best of the blocked families
//! (BCSR/BCSD, padded, narrow, and masked), the measured time per SpMV,
//! and the OVERLAP model's prediction residual — evidence that the
//! SubStat accounting charges SELL's padding the way it charges the
//! blocked formats' fill.
//!
//! ```sh
//! sellc                               # full sweep to results/sellc.txt
//! sellc --n 20000 --reps 2 --trials 1 # smoke-sized run
//! ```

use std::time::Instant;

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv};
use blocked_spmv::formats::{sell_sigmas, FormatKind, SellCSigma, SELL_SIGMA_FULL};
use blocked_spmv::kernels::{KernelImpl, SELL_HEIGHTS};
use blocked_spmv::model::{
    profile_keys, BlockConfig, Config, KernelProfile, MachineProfile, Model, ProfileOptions,
};

struct Opts {
    n: usize,
    width: usize,
    reps: usize,
    trials: usize,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        // Large enough that the value + column streams spill the
        // last-level cache, so padding shows up as time, not just bytes.
        n: 200_000,
        width: 12,
        reps: 5,
        trials: 6,
        seed: 42,
        out: "results/sellc.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--n" => opts.n = num("--n").max(256) as usize,
            "--width" => opts.width = num("--width").max(1) as usize,
            "--reps" => opts.reps = num("--reps").max(1) as usize,
            "--trials" => opts.trials = num("--trials").max(1) as usize,
            "--seed" => opts.seed = num("--seed"),
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: sellc [--n N] [--width W] [--reps R] [--trials X] \
                     [--seed S] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three row-length regimes the sweep contrasts.
#[derive(Clone, Copy)]
enum Dist {
    /// Every row has exactly `width` contiguous entries around the
    /// diagonal — uniform rows, so SELL stores zero padding at any σ.
    Banded,
    /// Zipf-like row lengths scattered over the row index space: a few
    /// rows are `~16x` longer than the median, so an unsorted slice
    /// pads every neighbour of a heavy row and σ decides the cost.
    PowerLaw,
    /// Uniformly random lengths in `0..2*width` (empty rows included)
    /// with columns scattered over the whole index range.
    Scatter,
}

impl Dist {
    const ALL: [Dist; 3] = [Dist::Banded, Dist::PowerLaw, Dist::Scatter];

    fn label(self) -> &'static str {
        match self {
            Dist::Banded => "banded",
            Dist::PowerLaw => "powerlaw",
            Dist::Scatter => "scatter",
        }
    }

    /// Nonzeros in row `i` of an `n`-row matrix with mean width `w`.
    fn row_len(self, i: usize, n: usize, w: usize, rng: &mut u64) -> usize {
        match self {
            Dist::Banded => w,
            Dist::PowerLaw => {
                // Rank-by-hash so heavy rows land anywhere, not in a
                // prefix the slice layout would accidentally group.
                let mut h = i as u64 ^ 0x94D0_49BB_1331_11EB;
                let rank = (splitmix(&mut h) as usize % n) + 1;
                let scale = w as f64 * 0.55;
                let len = scale * (n as f64 / rank as f64).powf(0.5);
                (len as usize).clamp(1, 16 * w)
            }
            Dist::Scatter => (splitmix(rng) as usize) % (2 * w),
        }
    }
}

/// Builds the `n x n` test matrix for one distribution.
fn build_matrix(dist: Dist, n: usize, w: usize, seed: u64) -> Csr<f64> {
    let mut rng = seed;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        let len = dist.row_len(i, n, w, &mut rng);
        for s in 0..len {
            let j = match dist {
                // Contiguous band clipped to the matrix edge.
                Dist::Banded => (i.saturating_sub(w / 2) + s).min(n - 1),
                _ => splitmix(&mut rng) as usize % n,
            };
            let v = (splitmix(&mut rng) % 4000) as f64 / 1000.0 - 2.0;
            let v = if v == 0.0 { 0.5 } else { v };
            let _ = coo.push(i, j, v);
        }
    }
    Csr::from_coo(&coo)
}

/// Seconds per SpMV: best-of-`trials` means of `reps` back-to-back
/// products.
fn time_spmv<M: SpMv<f64>>(mat: &M, x: &[f64], reps: usize, trials: usize) -> f64 {
    let mut y = vec![0.0f64; mat.n_rows()];
    mat.spmv_into(x, &mut y); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..reps {
            mat.spmv_into(x, &mut y);
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn rel_err(measured: f64, predicted: f64) -> f64 {
    if measured <= 0.0 {
        return 0.0;
    }
    (predicted - measured) / measured
}

/// Matrix bytes a configuration would store, from its [`SubStat`]s
/// (working set minus the shared vector traffic) — no build needed.
///
/// [`SubStat`]: blocked_spmv::model::SubStat
fn config_matrix_bytes(config: Config, csr: &Csr<f64>) -> usize {
    config
        .substats(csr)
        .iter()
        .map(|s| s.ws_bytes - s.vec_bytes)
        .sum()
}

/// Smallest stored bytes/nnz over the blocked (non-SELL, non-CSR)
/// families, with the winning family's label.
fn best_blocked_bytes(csr: &Csr<f64>) -> (f64, &'static str) {
    let nnz = csr.nnz().max(1) as f64;
    let mut best = (f64::INFINITY, "-");
    for config in Config::enumerate_extended(false) {
        let kind = config.block.kind();
        if matches!(
            kind,
            FormatKind::Csr | FormatKind::CsrDelta | FormatKind::SellCSigma
        ) {
            continue;
        }
        let bpn = config_matrix_bytes(config, csr) as f64 / nnz;
        if bpn < best.0 {
            best = (bpn, kind.label());
        }
    }
    best
}

fn main() {
    let opts = parse_opts();
    let imp = KernelImpl::Simd;

    // One calibration serves the whole sweep: OVERLAP needs the live
    // bandwidth plus t_b/nof for CSR and each SELL slice height.
    let probe = build_matrix(Dist::Scatter, opts.n, opts.width, opts.seed);
    let footprint = probe.working_set_bytes().max(8 << 20);
    let machine = MachineProfile::detect_with(footprint);
    let mut profile = KernelProfile::default();
    let popts = ProfileOptions {
        large_bytes: footprint,
        min_time: 2e-3,
        ..ProfileOptions::default()
    };
    let mut keys = vec![Config { block: BlockConfig::Csr, imp }.kernel_key()];
    for &c in &SELL_HEIGHTS {
        let block = BlockConfig::SellCSigma { c, sigma: 1 };
        keys.push(Config { block, imp }.kernel_key());
    }
    for (key, times) in profile_keys::<f64>(&machine, &popts, &keys) {
        profile.set(key, times);
    }

    let mut out = String::new();
    let header = format!(
        "# sellc sweep: n={}, width={}, imp={imp:?}, seed={}\n\
         # dist c sigma occ pad/nnz B/nnz csr_B/nnz blocked_B/nnz blocked_best \
         sell_ms csr_ms resid",
        opts.n, opts.width, opts.seed
    );
    println!("{header}");
    out.push_str(&header);
    out.push('\n');

    for dist in Dist::ALL {
        let csr = build_matrix(dist, opts.n, opts.width, opts.seed);
        let nnz = csr.nnz().max(1) as f64;
        let x: Vec<f64> = (0..csr.n_cols())
            .map(|i| 0.5 + (i % 13) as f64 * 0.125)
            .collect();
        let t_csr = time_spmv(&csr, &x, opts.reps, opts.trials);
        let csr_bpn = csr.matrix_bytes() as f64 / nnz;
        let (blocked_bpn, blocked_label) = best_blocked_bytes(&csr);

        for &c in &SELL_HEIGHTS {
            for &sigma in &sell_sigmas(c) {
                let config = Config {
                    block: BlockConfig::SellCSigma { c, sigma },
                    imp,
                };
                let sell = SellCSigma::from_csr(&csr, c, sigma, imp);
                let t_sell = time_spmv(&sell, &x, opts.reps, opts.trials);
                let pred = Model::Overlap.predict(&config.substats(&csr), &machine, &profile);
                let sigma_label = if sigma == SELL_SIGMA_FULL {
                    "n".to_string()
                } else {
                    sigma.to_string()
                };
                let line = format!(
                    "{} {c} {sigma_label} {:.3} {:.2} {:.2} {csr_bpn:.2} \
                     {blocked_bpn:.2} {blocked_label} {:.4} {:.4} {:+.3}",
                    dist.label(),
                    sell.occupancy(),
                    (sell.padding() * std::mem::size_of::<f64>()) as f64 / nnz,
                    sell.matrix_bytes() as f64 / nnz,
                    t_sell * 1e3,
                    t_csr * 1e3,
                    rel_err(t_sell, pred),
                );
                println!("{line}");
                out.push_str(&line);
                out.push('\n');
            }
        }
    }

    if let Some(dir) = std::path::Path::new(&opts.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&opts.out, out).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
}
