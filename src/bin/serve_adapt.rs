//! `serve_adapt`: drift-injection harness for the adaptive reselection
//! loop.
//!
//! Publishes a model-selected matrix, serves verified traffic through a
//! [`ServeEngine`], and attaches a residual-driven [`Tuner`] — then
//! injects the two staleness scenarios the tuner exists for and records
//! the detection → reprofile → rerank → hot-swap → recovery timeline to
//! `results/adaptive.txt`:
//!
//! 1. **Structure drift** — the "publisher" republishes a structurally
//!    different matrix (FEM 3×3 blocks → scattered random sparsity)
//!    under the *old* blocked configuration with its stale timing
//!    baseline, the way a re-meshing solver would. The tuner must
//!    detect the residual blow-up, re-rank against the new structure,
//!    and swap in the better-ranked (different) configuration.
//! 2. **Bandwidth perturbation** — the engine's residual-scale seam
//!    makes every recorded measurement look 4× slower, as if a
//!    co-tenant ate the memory bus. Structure is unchanged, so the
//!    rerank confirms the incumbent — but republishes it with a freshly
//!    calibrated baseline, which re-centers the residuals and proves
//!    recovery.
//!
//! Every reply is verified bitwise against the single-vector SpMV of
//! *some published version* of the matrix before it counts — a torn
//! answer that mixes versions matches none of them and aborts the run.
//! Traffic is closed-loop and single-in-flight, so each dispatch is a
//! width-1 chunk whose timing is directly comparable to the calibrated
//! baselines.
//!
//! ```sh
//! serve_adapt                               # defaults, ~1 s
//! serve_adapt --seed 9 --out results/adaptive.txt
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use blocked_spmv::core::{Csr, MatrixShape, SpMv};
use blocked_spmv::gen::GenSpec;
use blocked_spmv::model::{
    candidate_configs_extended, rank, select_extended, BlockConfig, Config, KernelProfile,
    MachineProfile, Model,
};
use blocked_spmv::serve::{EngineOptions, MatrixId, PreparedMatrix, Registry, ServeEngine};
use blocked_spmv::tune::{
    CannedSampler, DetectorConfig, SystemClock, TimelineKind, TuneOptions, Tuner, WatchSpec,
};

/// Distinct canned input vectors (references precomputed per version).
const XS_PER_MATRIX: usize = 4;

struct Opts {
    nodes: usize,
    batch: usize,
    max_batches: usize,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        nodes: 2000,
        batch: 8,
        max_batches: 60,
        seed: 7,
        out: "results/adaptive.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--nodes" => opts.nodes = num("--nodes").max(100) as usize,
            "--batch" => opts.batch = num("--batch").max(1) as usize,
            "--max-batches" => opts.max_batches = num("--max-batches").max(1) as usize,
            "--seed" => opts.seed = num("--seed"),
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve_adapt [--nodes N] [--batch B] [--max-batches K] \
                     [--seed S] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-version bitwise references for the canned inputs.
struct RefSets {
    sets: Vec<(u64, Vec<Vec<f64>>)>,
}

impl RefSets {
    /// Records references for the currently published version, once.
    fn absorb(&mut self, registry: &Registry<f64>, id: MatrixId, xs: &[Vec<f64>]) {
        let (version, prepared) = registry
            .get_versioned(id)
            .expect("watched matrix must stay published");
        if self.sets.iter().any(|(v, _)| *v == version) {
            return;
        }
        let refs = xs.iter().map(|x| prepared.spmv(x)).collect();
        self.sets.push((version, refs));
    }

    /// The published version whose reference `y` matches bitwise, if any.
    fn verify(&self, xi: usize, y: &[f64]) -> Option<u64> {
        self.sets
            .iter()
            .rev()
            .find(|(_, refs)| refs[xi].as_slice() == y)
            .map(|(v, _)| *v)
    }
}

struct Harness {
    registry: Arc<Registry<f64>>,
    engine: Arc<ServeEngine<f64>>,
    tuner: Tuner<f64>,
    id: MatrixId,
    xs: Vec<Vec<f64>>,
    refsets: RefSets,
    verified_by_version: BTreeMap<u64, u64>,
    rng: u64,
    log: String,
}

impl Harness {
    /// Serves one closed-loop batch of verified requests, then runs a
    /// tuner pass. Aborts the run on any reply that matches no
    /// published version bitwise.
    fn batch(&mut self, n: usize) {
        for _ in 0..n {
            let xi = (splitmix(&mut self.rng) % XS_PER_MATRIX as u64) as usize;
            let y = self
                .engine
                .submit_wait(self.id, self.xs[xi].clone())
                .expect("closed-loop request must complete");
            let Some(version) = self.refsets.verify(xi, &y) else {
                eprintln!("FATAL: reply matches no published version bitwise");
                std::process::exit(1);
            };
            *self.verified_by_version.entry(version).or_insert(0) += 1;
        }
        self.tuner.run_once();
        // A pass may have published a new version; capture its refs
        // before the next batch's replies can land on it.
        self.refsets.absorb(&self.registry, self.id, &self.xs);
    }

    /// Serves batches until `pred` holds over the timeline (or the
    /// batch budget runs out, which aborts the run).
    fn batches_until(
        &mut self,
        what: &str,
        batch: usize,
        max_batches: usize,
        pred: impl Fn(&[TimelineKind]) -> bool,
    ) {
        for _ in 0..max_batches {
            self.batch(batch);
            let kinds: Vec<TimelineKind> =
                self.tuner.timeline().into_iter().map(|e| e.kind).collect();
            if pred(&kinds) {
                return;
            }
        }
        eprintln!(
            "FATAL: {what} did not happen within the batch budget\n\
             verdict = {:?}, windowed |rel err| = {:?}\ntimeline so far:",
            self.tuner.verdict_for(self.id),
            self.tuner.windowed_for(self.id),
        );
        for ev in self.tuner.timeline() {
            eprintln!("  {ev}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_opts();

    // Canned machine/kernel profile: selection is deterministic, and the
    // interesting measurements (dispatch timings, calibrations) are real.
    let machine = MachineProfile {
        bandwidth: 8e9,
        l1_bytes: 32 << 10,
        llc_bytes: 8 << 20,
    };
    let profile = KernelProfile::uniform(1e-9, 0.5);

    // Phase 0: publish a FEM-blocked matrix; the models pick a blocked
    // format for it, which is exactly what structure drift will betray.
    let fem: Csr<f64> = GenSpec::FemBlocks {
        nodes: opts.nodes,
        dof: 3,
        neighbors: 6,
    }
    .build(opts.seed);
    let n = fem.n_cols();
    // The incumbent is pinned to the best *padded* candidate on
    // purpose: masked (padding-free) storage is insensitive to the
    // scatter drift injected below — its cost does not explode when
    // the block structure disappears — so with a masked incumbent the
    // stale baseline is never betrayed and there is no residual signal
    // to detect. The tuner itself still re-ranks over the full
    // extended arena, so the post-drift swap target may well be a
    // masked format.
    let padded_arena: Vec<Config> = candidate_configs_extended(Model::Overlap, true)
        .into_iter()
        .filter(|c| {
            !matches!(
                c.block,
                BlockConfig::BcsrMasked(_) | BlockConfig::BcsdMasked(_)
            )
        })
        .collect();
    let choice = rank(Model::Overlap, &fem, &machine, &profile, &padded_arena)
        .into_iter()
        .next()
        .expect("padded arena is never empty");
    let initial_config = choice.config;
    let prepared = PreparedMatrix::from_config(initial_config, &fem)
        .with_selection(Model::Overlap, choice.predicted);

    let registry = Arc::new(Registry::new());
    let id = MatrixId(1);
    registry.publish(id, prepared);
    let engine = Arc::new(ServeEngine::new(
        Arc::clone(&registry),
        EngineOptions {
            window: Duration::from_micros(50),
            ..EngineOptions::default()
        },
    ));

    // The sampler is scripted with the stored profile's own numbers: the
    // reprofile seam is exercised (a `Reprofiled` event per stale
    // episode) without injecting ranking noise into the harness.
    let canned_kernels = {
        let mut rows: Vec<_> = candidate_configs_extended(Model::Overlap, true)
            .into_iter()
            .map(|c| (c.kernel_key(), profile.get(c.kernel_key())))
            .collect();
        rows.sort_by_key(|(k, _)| format!("{k:?}"));
        rows.dedup_by_key(|(k, _)| format!("{k:?}"));
        rows
    };
    let sampler = CannedSampler::new()
        .with_bandwidth(machine.bandwidth)
        .with_kernels(canned_kernels);

    let tuner = Tuner::new(
        Arc::clone(&registry),
        Some(Arc::clone(&engine)),
        Arc::new(SystemClock::new()),
        Box::new(sampler),
        TuneOptions::default(),
    );
    let spec = WatchSpec {
        detector: DetectorConfig {
            window: 8,
            enter: 0.45,
            exit: 0.25,
            consecutive: 3,
            cooldown: 8,
            min_samples: 4,
        },
        ..WatchSpec::new(
            Arc::new(fem.clone()),
            Model::Overlap,
            machine,
            profile.clone(),
        )
    };
    assert!(tuner.watch(id, spec), "matrix is published");

    let mut rng = opts.seed ^ 0xC0FFEE;
    let xs: Vec<Vec<f64>> = (0..XS_PER_MATRIX)
        .map(|_| (0..n).map(|_| unit_f64(splitmix(&mut rng)) * 2.0 - 1.0).collect())
        .collect();
    let mut h = Harness {
        registry: Arc::clone(&registry),
        engine: Arc::clone(&engine),
        tuner,
        id,
        xs,
        refsets: RefSets { sets: Vec::new() },
        verified_by_version: BTreeMap::new(),
        rng: opts.seed ^ 0xADAB7,
        log: String::new(),
    };
    h.refsets.absorb(&registry, id, &h.xs);
    h.log.push_str(&format!(
        "serve_adapt: nodes={} batch={} max_batches={} seed={}\n\
         matrix: {} x {}, {} nnz (FEM 3x3 blocks) -> {} (v1)\n",
        opts.nodes,
        opts.batch,
        opts.max_batches,
        opts.seed,
        fem.n_rows(),
        fem.n_cols(),
        fem.nnz(),
        initial_config,
    ));

    // Phase 1: warmup. Calibrated baselines center the residuals, so
    // steady traffic must not trigger anything.
    h.batch(2 * opts.batch);
    let swaps_at_warmup = h
        .tuner
        .timeline()
        .iter()
        .filter(|e| matches!(e.kind, TimelineKind::Swapped { .. }))
        .count();
    h.log.push_str(&format!(
        "phase warmup: {} verified requests, windowed |rel err| = {:.3}, swaps = {}\n",
        h.verified_by_version.values().sum::<u64>(),
        h.tuner.windowed_for(id).unwrap_or(f64::NAN),
        swaps_at_warmup,
    ));

    // Phase 2: structure drift. The "publisher" republishes a scattered
    // matrix of the same dimensions under the OLD blocked config with
    // its stale timing baseline — then the residuals must betray it.
    let drifted: Arc<Csr<f64>> = Arc::new(
        GenSpec::Random {
            n,
            m: n,
            nnz_per_row: 3,
        }
        .build(opts.seed ^ 0xD81F7),
    );
    let stale_baseline = engine
        .calibrate(id, &h.xs[0], 3)
        .expect("calibrating the pre-drift version");
    let drift_version = registry.publish(
        id,
        PreparedMatrix::from_config(initial_config, &drifted),
    );
    engine.expect(
        id,
        drift_version,
        blocked_spmv::serve::residual_key_for(initial_config, Model::Overlap),
        stale_baseline,
    );
    h.refsets.absorb(&registry, id, &h.xs);
    h.tuner.update_structure(id, Arc::clone(&drifted));
    h.log.push_str(&format!(
        "phase drift: republished {} nnz random matrix under {} (v{drift_version}, stale baseline {:.1} us)\n",
        drifted.nnz(),
        initial_config,
        stale_baseline * 1e6,
    ));

    h.batches_until("structure-drift swap", opts.batch, opts.max_batches, |k| {
        k.iter()
            .any(|e| matches!(e, TimelineKind::Swapped { .. }))
    });
    let swapped_to = h
        .tuner
        .current_config(id)
        .expect("watched matrix has a current config");
    assert_ne!(
        swapped_to, initial_config,
        "drift must swap to a different configuration"
    );
    // "Better-ranked" is checkable directly: the tuner's pick is what
    // the model ranks first on the drifted structure.
    let best = select_extended(Model::Overlap, &drifted, &machine, &profile, true);
    assert_eq!(
        swapped_to, best.config,
        "swap target must be the model's first-ranked config on the new structure"
    );
    h.batches_until("post-swap recovery", opts.batch, opts.max_batches, |k| {
        let swap_at = k
            .iter()
            .rposition(|e| matches!(e, TimelineKind::Swapped { .. }))
            .unwrap_or(0);
        k[swap_at..]
            .iter()
            .any(|e| matches!(e, TimelineKind::Recovered { .. }))
    });
    let report_after_swap = engine.report();
    h.log.push_str(&format!(
        "phase drift: detected, reranked, SWAPPED {initial_config} -> {swapped_to}, recovered\n"
    ));

    // Phase 3: bandwidth perturbation. Every recorded measurement now
    // looks 4x slower; structure is unchanged, so the rerank confirms
    // the incumbent with a recalibrated (scaled) baseline, and the
    // residuals re-center.
    engine.set_residual_scale(4.0);
    let confirmed_since = h.tuner.timeline().len();
    h.batches_until("bandwidth-perturbation republish", opts.batch, opts.max_batches, |k| {
        k[confirmed_since.min(k.len())..].iter().any(|e| {
            matches!(
                e,
                TimelineKind::Confirmed { .. } | TimelineKind::Swapped { .. }
            )
        })
    });
    h.batches_until("post-perturbation recovery", opts.batch, opts.max_batches, |k| {
        k[confirmed_since.min(k.len())..]
            .iter()
            .any(|e| matches!(e, TimelineKind::Recovered { .. }))
    });
    h.log.push_str(
        "phase bandwidth: 4x residual scale detected, baseline recalibrated, recovered\n",
    );

    assert!(!h.tuner.panicked(), "tuner must not have panicked");

    // Report: verified traffic per version, latency separability, and
    // the full recovery timeline.
    let total: u64 = h.verified_by_version.values().sum();
    h.log.push_str(&format!(
        "verified replies: {total} total, by version {{{}}}\n",
        h.verified_by_version
            .iter()
            .map(|(v, c)| format!("v{v}:{c}"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let whole = engine.report();
    let fmt_lat = |l: Option<blocked_spmv::serve::LatencySummary>| match l {
        Some(l) => format!(
            "p50={:.1} p95={:.1} p99={:.1} us",
            l.p50_ns as f64 / 1e3,
            l.p95_ns as f64 / 1e3,
            l.p99_ns as f64 / 1e3
        ),
        None => "n/a".to_string(),
    };
    h.log.push_str(&format!(
        "latency whole-run: {}\n\
         latency post-drift-swap window (at swap time): {}\n\
         latency current window (post-perturbation republish): {}\n",
        fmt_lat(whole.latency),
        fmt_lat(report_after_swap.window_latency),
        fmt_lat(whole.window_latency),
    ));
    h.log.push_str("timeline:\n");
    for ev in h.tuner.timeline() {
        h.log.push_str(&format!("  {ev}\n"));
    }

    print!("{}", h.log);
    if let Some(dir) = std::path::Path::new(&opts.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&opts.out, &h.log) {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("wrote {}", opts.out);
}
