//! `serve_load`: load generator for the SpMV serving layer.
//!
//! Publishes a mix of synthetic matrices into a [`Registry`], then fires
//! the same closed-loop traffic at two [`ServeEngine`] configurations —
//! coalescing (`max_batch = 8`) and uncoalesced (`max_batch = 1`) — and
//! reports throughput, realized batch widths, and request latency
//! percentiles side by side. Every reply is checked bitwise against the
//! matrix's own single-vector SpMV before it counts, so the throughput
//! numbers are for *verified* answers.
//!
//! ```sh
//! serve_load                               # defaults: 2000 reqs, fan-in 8
//! serve_load --requests 200 --seed 7       # the tier-1 smoke invocation
//! serve_load --fanin 16 --skew 1.5 --out results/serving.txt
//! ```
//!
//! The traffic model: `--fanin` client threads each loop { pick a matrix
//! by Zipf(`--skew`) popularity, pick one of its canned input vectors,
//! submit, wait, verify } until `--requests` total replies have been
//! verified. Closed-loop fan-in is what creates coalescing opportunity:
//! the dispatcher's window (`--window-us`) collects the concurrent
//! submissions aimed at the same (popular) matrix into one SpMM call.
//! See `docs/SERVING.md` for the architecture this exercises.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blocked_spmv::core::{Csr, MatrixShape, SpMv};
use blocked_spmv::gen::GenSpec;
use blocked_spmv::model::{KernelProfile, MachineProfile, Model};
use blocked_spmv::serve::{EngineOptions, EngineReport, MatrixId, PreparedMatrix, Registry, ServeEngine};
use blocked_spmv::telemetry;

/// Distinct input vectors canned per matrix; references are precomputed
/// so client-side verification costs a `memcmp`, not a second SpMV.
const XS_PER_MATRIX: usize = 4;

struct Opts {
    requests: u64,
    matrices: usize,
    fanin: usize,
    depth: usize,
    trials: usize,
    window_us: u64,
    seed: u64,
    skew: f64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        requests: 2000,
        matrices: 4,
        fanin: 8,
        depth: 8,
        trials: 3,
        window_us: 200,
        seed: 7,
        skew: 1.2,
        out: "results/serving.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--requests" => opts.requests = num("--requests"),
            "--matrices" => opts.matrices = num("--matrices").max(1) as usize,
            "--fanin" => opts.fanin = num("--fanin").max(1) as usize,
            "--depth" => opts.depth = num("--depth").max(1) as usize,
            "--trials" => opts.trials = num("--trials").max(1) as usize,
            "--window-us" => opts.window_us = num("--window-us"),
            "--seed" => opts.seed = num("--seed"),
            "--skew" => {
                opts.skew = args.next().and_then(|v| v.parse().ok()).unwrap_or(1.2);
            }
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: serve_load [--requests N] [--matrices M] [--fanin F] \
                     [--depth D] [--trials T] [--window-us W] [--seed S] [--skew A] \
                     [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The published mix: one matrix per rotation through shapes the paper's
/// suite leans on (FEM blocks, stencils, random sparsity).
fn specs(matrices: usize) -> Vec<GenSpec> {
    let rotation = [
        GenSpec::Stencil2d { nx: 140, ny: 140 },
        GenSpec::FemBlocks {
            nodes: 4000,
            dof: 3,
            neighbors: 6,
        },
        GenSpec::Random {
            n: 16_000,
            m: 16_000,
            nnz_per_row: 8,
        },
        GenSpec::Stencil3d {
            nx: 24,
            ny: 24,
            nz: 24,
        },
    ];
    (0..matrices)
        .map(|i| rotation[i % rotation.len()].clone())
        .collect()
}

/// Zipf popularity: weight of rank `r` is `1 / (r + 1)^skew`, sampled by
/// inverting the cumulative table.
struct Popularity {
    cdf: Vec<f64>,
}

impl Popularity {
    fn new(n: usize, skew: f64) -> Self {
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(skew)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Popularity { cdf }
    }

    fn pick(&self, unit: f64) -> usize {
        self.cdf
            .iter()
            .position(|&c| unit <= c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(v: u64) -> f64 {
    (v >> 11) as f64 / (1u64 << 53) as f64
}

/// One published matrix plus its canned inputs and verified references.
struct Workload {
    id: MatrixId,
    xs: Vec<Vec<f64>>,
    refs: Vec<Vec<f64>>,
}

struct RunOutcome {
    elapsed: Duration,
    report: EngineReport,
    request_pcts: Option<Vec<u64>>,
}

/// Fires `requests` closed-loop requests from `fanin` client threads and
/// returns wall time + the engine's own accounting.
fn run_traffic(
    registry: &Arc<Registry<f64>>,
    workloads: &Arc<Vec<Workload>>,
    opts: &Opts,
    max_batch: usize,
) -> RunOutcome {
    telemetry::clear();
    let engine = Arc::new(ServeEngine::new(
        Arc::clone(registry),
        EngineOptions {
            window: Duration::from_micros(opts.window_us),
            max_batch,
            ..EngineOptions::default()
        },
    ));
    let popularity = Arc::new(Popularity::new(workloads.len(), opts.skew));
    let issued = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let clients: Vec<_> = (0..opts.fanin)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let workloads = Arc::clone(workloads);
            let popularity = Arc::clone(&popularity);
            let issued = Arc::clone(&issued);
            let total = opts.requests;
            let depth = opts.depth;
            let mut rng = opts.seed ^ (c as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
            std::thread::spawn(move || {
                let mut mismatches = 0u64;
                loop {
                    // Pipelined closed loop: keep up to `depth` requests
                    // in flight before waiting, like an async client with
                    // bounded concurrency. Depth is what gives the
                    // dispatcher something to coalesce.
                    let mut inflight = Vec::with_capacity(depth);
                    for _ in 0..depth {
                        if issued.fetch_add(1, Ordering::Relaxed) >= total {
                            break;
                        }
                        let wi = popularity.pick(unit_f64(splitmix(&mut rng)));
                        let w = &workloads[wi];
                        let xi = (splitmix(&mut rng) % XS_PER_MATRIX as u64) as usize;
                        let t = engine
                            .submit(w.id, w.xs[xi].clone())
                            .expect("closed-loop traffic cannot saturate the queue");
                        inflight.push((t, wi, xi));
                    }
                    if inflight.is_empty() {
                        return mismatches;
                    }
                    for (t, wi, xi) in inflight {
                        let y = t.wait().expect("request must complete");
                        if y != workloads[wi].refs[xi] {
                            mismatches += 1;
                        }
                    }
                }
            })
        })
        .collect();
    let mismatches: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let elapsed = start.elapsed();
    assert_eq!(
        mismatches, 0,
        "served results must be bitwise-equal to single-vector SpMV"
    );
    let report = engine.report();
    let request_pcts =
        telemetry::summary::span_percentiles(&telemetry::snapshot(), "serve.request", &[50.0, 95.0, 99.0]);
    RunOutcome {
        elapsed,
        report,
        request_pcts,
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn describe(label: &str, o: &RunOutcome, requests: u64, out: &mut String) {
    let secs = o.elapsed.as_secs_f64();
    let rep = &o.report;
    out.push_str(&format!(
        "{label}: {:.0} req/s ({requests} requests in {:.3} s)\n",
        requests as f64 / secs,
        secs
    ));
    out.push_str(&format!(
        "  batches={} mean_width={:.2} by_k={{",
        rep.batches,
        rep.mean_batch_width()
    ));
    for (i, (k, n)) in rep.dispatches_by_k.iter().enumerate() {
        out.push_str(&format!("{}k{k}:{n}", if i == 0 { "" } else { ", " }));
    }
    out.push_str("}\n");
    if let Some(lat) = rep.latency {
        out.push_str(&format!(
            "  latency_us p50={:.1} p95={:.1} p99={:.1} max={:.1}",
            us(lat.p50_ns),
            us(lat.p95_ns),
            us(lat.p99_ns),
            us(lat.max_ns)
        ));
    }
    if let Some(p) = &o.request_pcts {
        out.push_str(&format!(
            "  (telemetry serve.request p50={:.1} p95={:.1} p99={:.1})",
            us(p[0]),
            us(p[1]),
            us(p[2])
        ));
    }
    out.push('\n');
}

fn main() {
    let opts = parse_opts();
    telemetry::set_enabled(true);

    // A canned machine/kernel profile keeps selection deterministic and
    // start-up instant; a real deployment would calibrate once and save.
    let machine = MachineProfile {
        bandwidth: 8e9,
        l1_bytes: 32 << 10,
        llc_bytes: 8 << 20,
    };
    let profile = KernelProfile::uniform(1e-9, 0.5);

    let registry = Arc::new(Registry::new());
    let mut workloads = Vec::new();
    let mut header = String::new();
    header.push_str(&format!(
        "serve_load: requests={} matrices={} fanin={} depth={} trials={} window_us={} seed={} \
         skew={}\n",
        opts.requests,
        opts.matrices,
        opts.fanin,
        opts.depth,
        opts.trials,
        opts.window_us,
        opts.seed,
        opts.skew
    ));
    for (i, spec) in specs(opts.matrices).iter().enumerate() {
        let csr: Csr<f64> = spec.build(opts.seed ^ i as u64);
        let prepared = PreparedMatrix::prepare(&csr, Model::Overlap, &machine, &profile, true);
        let id = MatrixId(i as u64 + 1);
        header.push_str(&format!(
            "  {id}: {:?} -> {} ({} rows, {} nnz)\n",
            spec,
            prepared.config(),
            csr.n_rows(),
            csr.nnz_stored()
        ));
        let mut seed = opts.seed ^ (0xC0FFEE + i as u64);
        let xs: Vec<Vec<f64>> = (0..XS_PER_MATRIX)
            .map(|_| {
                (0..csr.n_cols())
                    .map(|_| unit_f64(splitmix(&mut seed)) * 2.0 - 1.0)
                    .collect()
            })
            .collect();
        // The bitwise reference is the *prepared* matrix's single-vector
        // path: the SpMM kernels are bitwise per-column equal to it (see
        // tests/differential_equivalence.rs), so coalescing must not
        // change a single bit.
        let refs = xs.iter().map(|x| prepared.spmv(x)).collect();
        registry.publish(id, prepared);
        workloads.push(Workload { id, xs, refs });
    }
    let workloads = Arc::new(workloads);
    print!("{header}");

    // Best-of-trials per mode, like the timing module's min-of-runs, and
    // *interleaved* (1, 8, 1, 8, …) so slow drift in the box's load hits
    // both policies alike: on a loaded (or single-core) machine a stray
    // scheduler stall would otherwise masquerade as a policy difference.
    let mut un_trials = Vec::new();
    let mut co_trials = Vec::new();
    for _ in 0..opts.trials {
        un_trials.push(run_traffic(&registry, &workloads, &opts, 1));
        co_trials.push(run_traffic(&registry, &workloads, &opts, 8));
    }
    let best = |v: Vec<RunOutcome>| v.into_iter().min_by_key(|o| o.elapsed).expect("trials >= 1");
    let uncoalesced = best(un_trials);
    let coalesced = best(co_trials);

    let mut body = String::new();
    describe("uncoalesced (max_batch=1)", &uncoalesced, opts.requests, &mut body);
    describe("coalesced   (max_batch=8)", &coalesced, opts.requests, &mut body);
    let gain = uncoalesced.elapsed.as_secs_f64() / coalesced.elapsed.as_secs_f64();
    body.push_str(&format!(
        "coalescing gain: {gain:.2}x throughput at fan-in {}\n",
        opts.fanin
    ));
    print!("{body}");

    let text = format!("{header}{body}");
    if let Some(dir) = std::path::Path::new(&opts.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("wrote {}", opts.out);
}
