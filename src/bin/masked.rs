//! `masked`: padded vs masked blocked storage across block fill ratios.
//!
//! Generates banded block-structured matrices — block columns within a
//! fixed band of the diagonal, like a banded FEM discretisation — whose
//! 2x4 block rows are bimodal: *interior* rows carry fully dense blocks
//! while *interface* rows carry sparse blocks (2 of 8 positions), mixed
//! to hit a target aggregate fill. That is the regime where padding
//! actually hurts: the source-vector band stays cache-resident, so the
//! value stream is the bottleneck, and the padded format streams
//! `1/fill` times more value bytes than the masked one. The sweep
//! measures the padded [`Bcsr`] and the padding-free [`BcsrMasked`] on
//! the same matrix — time per SpMV, matrix bytes per nonzero, and the
//! OVERLAP model's prediction residual for both — across aggregate
//! fills 0.3..=1.0; below full occupancy the masked format's time drops
//! under the padded format's while the model (fed the true stored
//! bytes) keeps tracking both.
//!
//! ```sh
//! masked                                  # full sweep to results/masked.txt
//! masked --n 4000 --reps 3 --trials 1     # smoke-sized run
//! ```

use std::time::Instant;

use blocked_spmv::core::{Coo, Csr, MatrixShape, SpMv};
use blocked_spmv::formats::{Bcsr, BcsrMasked};
use blocked_spmv::kernels::{BlockShape, KernelImpl};
use blocked_spmv::model::{
    profile_keys, BlockConfig, Config, KernelProfile, MachineProfile, Model, ProfileOptions,
};

struct Opts {
    n: usize,
    blocks_per_row: usize,
    reps: usize,
    trials: usize,
    seed: u64,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        // Large enough that the padded value stream spills the last-level
        // cache while the banded source-vector slice stays hot.
        n: 600_000,
        blocks_per_row: 16,
        reps: 5,
        trials: 6,
        seed: 42,
        out: "results/masked.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--n" => opts.n = num("--n").max(64) as usize,
            "--blocks" => opts.blocks_per_row = num("--blocks").max(1) as usize,
            "--reps" => opts.reps = num("--reps").max(1) as usize,
            "--trials" => opts.trials = num("--trials").max(1) as usize,
            "--seed" => opts.seed = num("--seed"),
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: masked [--n N] [--blocks B] [--reps R] [--trials X] \
                     [--seed S] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nonzeros per block in the sparse (interface) rows.
const SPARSE_PER_BLOCK: usize = 2;

/// Block-column band width: every block sits within this many block
/// columns of the diagonal, so the touched source-vector slice stays
/// cache-resident while the value stream does not.
const BAND_BLOCK_COLS: usize = 2048;

/// An `n`x`n` banded matrix of 2x4 blocks with bimodal per-row fill:
/// each block row is either *interior* (every block fully dense) or
/// *interface* (every block holds [`SPARSE_PER_BLOCK`] of 8 positions,
/// chosen by a per-block stride walk so partial masks vary), with the
/// interior fraction solved so the aggregate occupancy hits `fill`.
/// `blocks_per_row` blocks sit at random aligned positions within
/// [`BAND_BLOCK_COLS`] of the diagonal.
fn fill_controlled_matrix(n: usize, blocks_per_row: usize, fill: f64, seed: u64) -> Csr<f64> {
    let (r, c) = (2usize, 4usize);
    let elems = r * c;
    let n_bcols = n / c;
    let n_brows = n / r;
    // full_frac * elems + (1 - full_frac) * SPARSE_PER_BLOCK = fill * elems
    let full_frac = ((fill * elems as f64 - SPARSE_PER_BLOCK as f64)
        / (elems - SPARSE_PER_BLOCK) as f64)
        .clamp(0.0, 1.0);
    let full_cut = (full_frac * 4096.0) as u64;
    let mut rng = seed;
    let mut coo = Coo::new(n, n);
    let band = BAND_BLOCK_COLS.min(n_bcols);
    for bi in 0..n_brows {
        let per_block = if splitmix(&mut rng) % 4096 < full_cut {
            elems
        } else {
            SPARSE_PER_BLOCK
        };
        let diag = bi * n_bcols / n_brows;
        let mut cols: Vec<usize> = (0..blocks_per_row)
            .map(|_| {
                let off = splitmix(&mut rng) as usize % band;
                (diag + off).min(n_bcols - 1)
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for bj in cols {
            let start = splitmix(&mut rng) as usize % elems;
            for s in 0..per_block {
                let slot = (start + s * 3) % elems;
                let (di, dj) = (slot / c, slot % c);
                let v = (splitmix(&mut rng) % 4000) as f64 / 1000.0 - 2.0;
                let v = if v == 0.0 { 0.5 } else { v };
                let _ = coo.push(bi * r + di, bj * c + dj, v);
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Seconds per SpMV: the mean of `reps` back-to-back products.
fn time_once<M: SpMv<f64>>(mat: &M, x: &[f64], y: &mut [f64], reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        mat.spmv_into(x, y);
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Best-of-`trials` for both formats with the trials *interleaved*
/// (pad, mask, pad, mask, …) so slow machine-wide drift lands on both
/// measurements equally instead of biasing whichever ran last.
fn time_pair<A: SpMv<f64>, B: SpMv<f64>>(
    padded: &A,
    masked: &B,
    x: &[f64],
    n_rows: usize,
    reps: usize,
    trials: usize,
) -> (f64, f64) {
    let mut y = vec![0.0f64; n_rows];
    padded.spmv_into(x, &mut y); // warm-up
    masked.spmv_into(x, &mut y);
    let (mut tp, mut tm) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        tp = tp.min(time_once(padded, x, &mut y, reps));
        tm = tm.min(time_once(masked, x, &mut y, reps));
    }
    (tp, tm)
}

fn rel_err(measured: f64, predicted: f64) -> f64 {
    if measured <= 0.0 {
        return 0.0;
    }
    (predicted - measured) / measured
}

fn main() {
    let opts = parse_opts();
    let shape = BlockShape::new(2, 4).unwrap();
    let imp = KernelImpl::Simd;
    let padded_cfg = Config { block: BlockConfig::Bcsr(shape), imp };
    let masked_cfg = Config { block: BlockConfig::BcsrMasked(shape), imp };

    // One calibration serves the whole sweep: the OVERLAP model needs
    // the live bandwidth plus t_b/nof for exactly the two kernels.
    let probe = fill_controlled_matrix(opts.n, opts.blocks_per_row, 1.0, opts.seed);
    let footprint = probe.working_set_bytes().max(8 << 20);
    let machine = MachineProfile::detect_with(footprint);
    let mut profile = KernelProfile::default();
    let popts = ProfileOptions {
        large_bytes: footprint,
        min_time: 2e-3,
        ..ProfileOptions::default()
    };
    for (key, times) in profile_keys::<f64>(
        &machine,
        &popts,
        &[padded_cfg.kernel_key(), masked_cfg.kernel_key()],
    ) {
        profile.set(key, times);
    }

    let mut out = String::new();
    let header = format!(
        "# masked sweep: BCSR {shape} {imp:?}, n={}, blocks/brow={}, seed={}\n\
         # fill occ nnz pad_ms mask_ms speedup pad_B/nnz mask_B/nnz \
         pad_resid mask_resid",
        opts.n, opts.blocks_per_row, opts.seed
    );
    println!("{header}");
    out.push_str(&header);
    out.push('\n');

    for fill10 in 3..=10 {
        let fill = fill10 as f64 / 10.0;
        let csr = fill_controlled_matrix(opts.n, opts.blocks_per_row, fill, opts.seed);
        let x: Vec<f64> = (0..csr.n_cols())
            .map(|i| 0.5 + (i % 13) as f64 * 0.125)
            .collect();
        let nnz = csr.nnz();

        let padded = Bcsr::from_csr(&csr, shape, imp);
        let masked = BcsrMasked::from_csr(&csr, shape, imp);
        let (t_pad, t_mask) =
            time_pair(&padded, &masked, &x, csr.n_rows(), opts.reps, opts.trials);

        let pred_pad = Model::Overlap.predict(&padded_cfg.substats(&csr), &machine, &profile);
        let pred_mask = Model::Overlap.predict(&masked_cfg.substats(&csr), &machine, &profile);

        let line = format!(
            "{fill:.1} {:.3} {nnz} {:.4} {:.4} {:.3} {:.2} {:.2} {:+.3} {:+.3}",
            masked.occupancy(),
            t_pad * 1e3,
            t_mask * 1e3,
            t_pad / t_mask,
            padded.matrix_bytes() as f64 / nnz as f64,
            masked.matrix_bytes() as f64 / nnz as f64,
            rel_err(t_pad, pred_pad),
            rel_err(t_mask, pred_mask),
        );
        println!("{line}");
        out.push_str(&line);
        out.push('\n');
    }

    if let Some(dir) = std::path::Path::new(&opts.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&opts.out, out).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
}
