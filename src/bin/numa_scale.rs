//! `numa_scale`: flat vs NUMA-aware SpMV thread scaling, with model
//! residuals.
//!
//! Sweeps thread counts over one streaming matrix and times the same
//! [`SpmvPool`] strips under two placements:
//!
//! * **flat** — `PinPolicy::Compact`, strips built on the caller
//!   (first-touched wherever the driver ran): the pre-NUMA baseline;
//! * **domain** — `Placement::domain_aware`: workers spread round-robin
//!   across memory domains, each strip converted (and first-touched) on
//!   its own pinned worker, heavy rows nnz-split.
//!
//! Each row of the sweep also records what the multicore model expects:
//! `predict_threaded` (one shared bus) for the flat run and
//! `predict_threaded_hierarchy` (per-domain bandwidths measured by a
//! pinned STREAM-triad sweep) for the domain run, plus the relative
//! residual of each prediction. On a single-domain host the two
//! placements are the same plan — the gap is measurement noise — and
//! the hierarchy prediction collapses to the flat one by construction.
//!
//! ```sh
//! numa_scale                            # detect topology, sweep 1..=cores
//! numa_scale --flat --threads 2 --out results/numa.txt   # tier-1 smoke
//! numa_scale --n 40000 --nnz 12 --reps 30
//! ```
//!
//! See `docs/NUMA.md` for the placement machinery this exercises.

use std::time::Instant;

use blocked_spmv::core::{Csr, MatrixShape, SpMv};
use blocked_spmv::gen::GenSpec;
use blocked_spmv::model::{
    predict_threaded, predict_threaded_hierarchy, BandwidthHierarchy, Config, KernelProfile,
    MachineProfile, Model,
};
use blocked_spmv::parallel::{csr_unit_weights, PinPolicy, Placement, SpmvPool, Topology};
use blocked_spmv::tune::MeasuredSampler;

struct Opts {
    threads: usize,
    n: usize,
    nnz_per_row: usize,
    reps: usize,
    trials: usize,
    seed: u64,
    flat: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        threads: 0, // 0 = detect (available cores)
        n: 20_000,
        nnz_per_row: 8,
        reps: 20,
        trials: 3,
        seed: 9,
        flat: false,
        out: "results/numa.txt".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} needs an integer argument");
                    std::process::exit(2);
                })
        };
        match a.as_str() {
            "--threads" => opts.threads = num("--threads") as usize,
            "--n" => opts.n = num("--n").max(64) as usize,
            "--nnz" => opts.nnz_per_row = num("--nnz").max(1) as usize,
            "--reps" => opts.reps = num("--reps").max(1) as usize,
            "--trials" => opts.trials = num("--trials").max(1) as usize,
            "--seed" => opts.seed = num("--seed"),
            "--flat" => opts.flat = true,
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: numa_scale [--threads T] [--n N] [--nnz K] [--reps R] \
                     [--trials X] [--seed S] [--flat] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Seconds per SpMV on `pool`: best-of-`trials` over the mean of `reps`
/// back-to-back epochs, after one warm-up epoch.
fn time_pool(pool: &SpmvPool<f64>, x: &[f64], reps: usize, trials: usize) -> f64 {
    let mut y = vec![0.0f64; pool.n_rows()];
    pool.spmv_into(x, &mut y); // warm-up: faults pages, parks settle
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        for _ in 0..reps {
            pool.spmv_into(x, &mut y);
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rel_err(measured: f64, predicted: f64) -> f64 {
    if measured <= 0.0 {
        return 0.0;
    }
    (predicted - measured) / measured
}

fn main() {
    let opts = parse_opts();
    let topology = if opts.flat {
        Topology::flat(blocked_spmv::parallel::affinity::available_cores())
    } else {
        Topology::detect()
    };
    let max_threads = if opts.threads > 0 {
        opts.threads
    } else {
        topology.n_cores()
    };

    let csr: Csr<f64> = GenSpec::Random {
        n: opts.n,
        m: opts.n,
        nnz_per_row: opts.nnz_per_row,
    }
    .build(opts.seed);
    let weights = csr_unit_weights(&csr);
    let mut seed = opts.seed ^ 0xC0FFEE;
    let x: Vec<f64> = (0..csr.n_cols())
        .map(|_| (splitmix(&mut seed) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0)
        .collect();
    let reference = csr.spmv(&x);

    // Machine numbers: cache geometry from sysfs, per-domain bandwidths
    // from a pinned triad sweep (modest arrays so the smoke stays fast).
    let (l1_bytes, llc_bytes) = blocked_spmv::model::machine::cache_sizes();
    let mut sampler = MeasuredSampler::<f64>::new(
        MachineProfile {
            bandwidth: 4e9, // placeholder; replaced by the probe below
            l1_bytes,
            llc_bytes,
        },
        PinPolicy::None,
    );
    sampler.triad_elems = (8 << 20) / std::mem::size_of::<f64>();
    sampler.triad_min_time = 0.01;
    let hierarchy = sampler.measure_hierarchy(&topology);
    let machine = MachineProfile {
        bandwidth: hierarchy.domains()[0].local,
        l1_bytes,
        llc_bytes,
    };
    // A canned kernel profile keeps the run self-contained; residuals
    // are diagnostics of the bandwidth terms, not a calibrated fit.
    let profile = KernelProfile::uniform(1e-9, 0.5);

    let mut out = String::new();
    out.push_str(&format!(
        "numa_scale: domains={} cores={} matrix=Random(n={}, nnz/row={}) seed={} reps={} \
         trials={}{}\n",
        topology.n_domains(),
        topology.n_cores(),
        opts.n,
        opts.nnz_per_row,
        opts.seed,
        opts.reps,
        opts.trials,
        if opts.flat { " (forced flat)" } else { "" }
    ));
    for (d, bw) in hierarchy.domains().iter().enumerate() {
        out.push_str(&format!(
            "  domain {d}: local {:.2} GB/s, remote {:.2} GB/s\n",
            bw.local / 1e9,
            bw.remote / 1e9
        ));
    }
    out.push_str(
        "threads  flat_ms  domain_ms  dom/flat  pred_flat_ms  pred_dom_ms  resid_flat  resid_dom\n",
    );

    for t in 1..=max_threads {
        let flat_pool = SpmvPool::from_csr_placed(
            &csr,
            t,
            &weights,
            1,
            Csr::clone,
            Placement::pinned(PinPolicy::Compact),
        );
        let domain_pool = SpmvPool::from_csr_placed(
            &csr,
            t,
            &weights,
            1,
            Csr::clone,
            Placement::domain_aware(topology.clone()),
        );
        assert_eq!(flat_pool.spmv(&x), reference, "flat pool must stay bitwise");
        assert_eq!(
            domain_pool.spmv(&x),
            reference,
            "domain-aware pool must stay bitwise"
        );

        let flat_s = time_pool(&flat_pool, &x, opts.reps, opts.trials);
        let dom_s = time_pool(&domain_pool, &x, opts.reps, opts.trials);
        let pred_flat = predict_threaded(Model::Mem, &csr, &Config::CSR, t, &machine, &profile);
        let pred_dom = predict_threaded_hierarchy(
            Model::Mem,
            &csr,
            &Config::CSR,
            t,
            &machine,
            &profile,
            &hierarchy,
            None,
            None,
        );
        out.push_str(&format!(
            "{t:>7}  {:>7.3}  {:>9.3}  {:>8.2}  {:>12.3}  {:>11.3}  {:>+10.1}%  {:>+9.1}%\n",
            flat_s * 1e3,
            dom_s * 1e3,
            dom_s / flat_s,
            pred_flat * 1e3,
            pred_dom * 1e3,
            rel_err(flat_s, pred_flat) * 100.0,
            rel_err(dom_s, pred_dom) * 100.0,
        ));
    }
    if topology.n_domains() == 1 {
        out.push_str(
            "note: one memory domain — both placements compute the same plan; dom/flat deviates \
             from 1.00 only by timing noise (see EXPERIMENTS.md)\n",
        );
    }
    let flat_hierarchy = BandwidthHierarchy::flat(machine.bandwidth);
    let same = (1..=max_threads).all(|t| {
        predict_threaded(Model::Mem, &csr, &Config::CSR, t, &machine, &profile)
            == predict_threaded_hierarchy(
                Model::Mem,
                &csr,
                &Config::CSR,
                t,
                &machine,
                &profile,
                &flat_hierarchy,
                None,
                None,
            )
    });
    out.push_str(&format!(
        "flat-hierarchy cross-check (bitwise vs predict_threaded, all thread counts): {}\n",
        if same { "ok" } else { "MISMATCH" }
    ));

    print!("{out}");
    if let Some(dir) = std::path::Path::new(&opts.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&opts.out, &out) {
        eprintln!("cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("wrote {}", opts.out);
    if !same {
        std::process::exit(1);
    }
}
