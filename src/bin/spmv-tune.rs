//! `spmv-tune`: model-driven SpMV autotuning from the command line.
//!
//! Loads a matrix (a MatrixMarket `.mtx` file or a synthetic suite
//! entry), calibrates — or reloads — the machine profile, and prints
//! each performance model's recommended (format, block shape, kernel)
//! configuration. Optionally verifies the recommendation by measuring
//! the top candidates.
//!
//! ```sh
//! spmv-tune --mtx matrix.mtx
//! spmv-tune --suite 21 --scale 1.0 --verify
//! spmv-tune --suite 18 --profile calib.txt   # reuse a saved calibration
//! ```
//!
//! This is the *offline* tuner: one matrix, one decision, then exit.
//! The *online* counterpart — a background tuner that watches live
//! prediction residuals and hot-swaps selections under the serving
//! registry — lives in `blocked_spmv::tune` (see `docs/ADAPTIVE.md`
//! and the `serve_adapt` harness).

use blocked_spmv::core::{Csr, MatrixShape, SpMv};
use blocked_spmv::gen::{matrixmarket, random_vector, suite};
use blocked_spmv::model::timing::measure_spmv;
use blocked_spmv::model::{
    candidate_configs, load_profile, profile_kernels, rank, save_profile, select, Config,
    MachineProfile, Model, ProfileOptions,
};

struct Opts {
    mtx: Option<String>,
    suite_id: Option<usize>,
    scale: f64,
    profile_path: Option<String>,
    verify: bool,
    no_simd: bool,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        mtx: None,
        suite_id: None,
        scale: 1.0,
        profile_path: None,
        verify: false,
        no_simd: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mtx" => opts.mtx = args.next(),
            "--suite" => opts.suite_id = args.next().and_then(|v| v.parse().ok()),
            "--scale" => opts.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(1.0),
            "--profile" => opts.profile_path = args.next(),
            "--verify" => opts.verify = true,
            "--no-simd" => opts.no_simd = true,
            "--help" | "-h" => {
                println!(
                    "usage: spmv-tune (--mtx FILE | --suite ID [--scale F]) \
                     [--profile FILE] [--verify] [--no-simd]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn load_matrix(opts: &Opts) -> Csr<f64> {
    if let Some(path) = &opts.mtx {
        match matrixmarket::read_path(path) {
            Ok(csr) => return csr,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let id = opts.suite_id.unwrap_or_else(|| {
        eprintln!("either --mtx FILE or --suite ID is required (see --help)");
        std::process::exit(2);
    });
    let Some(entry) = suite(opts.scale).into_iter().find(|e| e.id == id) else {
        eprintln!("suite ids are 1..=30");
        std::process::exit(2);
    };
    println!(
        "suite matrix #{:02} {} ({}, {:?})",
        entry.id, entry.name, entry.domain, entry.geometry
    );
    entry.build(42)
}

fn main() {
    let opts = parse_opts();
    let csr = load_matrix(&opts);
    println!(
        "matrix: {} x {}, {} nonzeros, CSR working set {:.2} MiB",
        csr.n_rows(),
        csr.n_cols(),
        csr.nnz(),
        csr.working_set_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Calibration: reload if the profile file exists, else measure and
    // (if a path was given) save.
    let (machine, profile) = match &opts.profile_path {
        Some(path) if std::path::Path::new(path).exists() => {
            println!("loading calibration from {path}");
            load_profile(path).unwrap_or_else(|e| {
                eprintln!("bad profile file: {e}");
                std::process::exit(1);
            })
        }
        path => {
            println!("calibrating (STREAM triad + 53 kernel profiles) ...");
            let footprint = csr.working_set_bytes().clamp(16 << 20, 256 << 20);
            let machine = MachineProfile::detect_with(footprint);
            let profile = profile_kernels::<f64>(
                &machine,
                &ProfileOptions {
                    large_bytes: footprint.min(64 << 20),
                    ..ProfileOptions::default()
                },
            );
            if let Some(path) = path {
                if let Err(e) = save_profile(&machine, &profile, path) {
                    eprintln!("warning: could not save calibration: {e}");
                } else {
                    println!("calibration saved to {path}");
                }
            }
            (machine, profile)
        }
    };
    println!(
        "machine: {:.2} GiB/s, L1 {} KiB, LLC {} MiB\n",
        machine.bandwidth / (1u64 << 30) as f64,
        machine.l1_bytes / 1024,
        machine.llc_bytes / (1024 * 1024)
    );

    let include_simd = !opts.no_simd;
    for model in Model::ALL {
        let pick = select(model, &csr, &machine, &profile, include_simd);
        println!(
            "{:>8} recommends {:<18} (predicted {:.3} ms/SpMV)",
            model.label(),
            pick.config.to_string(),
            pick.predicted * 1e3
        );
    }

    if opts.verify {
        println!("\nverifying: measuring OVERLAP's top 5 candidates + CSR ...");
        let configs = candidate_configs(Model::Overlap, include_simd);
        let ranked = rank(Model::Overlap, &csr, &machine, &profile, &configs);
        let x: Vec<f64> = random_vector(csr.n_cols(), 1);
        let mut to_measure: Vec<Config> =
            ranked.iter().take(5).map(|c| c.config).collect();
        if !to_measure.contains(&Config::CSR) {
            to_measure.push(Config::CSR);
        }
        for config in to_measure {
            let built = config.build(&csr);
            let t = measure_spmv(&built, &x, 5e-3, 3);
            let pred = ranked
                .iter()
                .find(|c| c.config == config)
                .map(|c| c.predicted)
                .unwrap_or(f64::NAN);
            println!(
                "  {:<18} measured {:>8.3} ms | predicted {:>8.3} ms",
                config.to_string(),
                t * 1e3,
                pred * 1e3
            );
        }
    }
}
