#![warn(missing_docs)]

//! # blocked-spmv
//!
//! A reproduction of *"Performance Models for Blocked Sparse
//! Matrix-Vector Multiplication Kernels"* (V. Karakasis, G. Goumas,
//! N. Koziris — ICPP 2009) as a production-quality Rust workspace.
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! * [`core`] — scalars, COO/CSR/dense matrices, the
//!   [`SpMv`] trait;
//! * [`kernels`] — per-shape block multiply kernels
//!   (scalar and SSE2);
//! * [`formats`] — BCSR, BCSD, BCSR-DEC, BCSD-DEC, 1D-VBL, VBR,
//!   masked BCSR/BCSD, and SELL-C-σ storage;
//! * [`gen`] — synthetic matrix generators, the 30-matrix
//!   evaluation suite, MatrixMarket I/O;
//! * [`model`] — the MEM / MEMCOMP / OVERLAP performance
//!   models, machine profiling, and model-driven format selection;
//! * [`parallel`] — nnz-balanced row partitioning and
//!   multithreaded SpMV;
//! * [`bench`](mod@bench) — timing utilities, experiment drivers, and
//!   the table/figure regeneration harness;
//! * [`telemetry`] — spans / counters / gauges over per-thread
//!   lock-free rings, chrome-trace + flat-text exporters, and the
//!   prediction-residual tracker (see `docs/OBSERVABILITY.md`);
//! * [`serve`] — SpMV-as-a-service: the sharded prepared-matrix
//!   registry and the batched request engine coalescing `y = A·x`
//!   traffic into multi-vector dispatches (see `docs/SERVING.md` and
//!   the `serve_load` load generator);
//! * [`tune`] — online adaptive reselection: a residual-driven
//!   background tuner that detects stale selections and hot-swaps
//!   re-ranked configurations through the serving registry (see
//!   `docs/ADAPTIVE.md` and the `serve_adapt` harness).
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

pub use spmv_bench as bench;
pub use spmv_core as core;
pub use spmv_formats as formats;
pub use spmv_gen as gen;
pub use spmv_kernels as kernels;
pub use spmv_model as model;
pub use spmv_parallel as parallel;
pub use spmv_serve as serve;
pub use spmv_telemetry as telemetry;
pub use spmv_tune as tune;

pub use spmv_core::{
    Coo, Csr, DenseMatrix, Error, IndexWidth, Precision, Result, Scalar, SpMv, SpMvMulti,
};
pub use spmv_formats::{
    Bcsd, BcsdDec, Bcsr, BcsrDec, CsrDelta, FormatKind, SpMvAcc, SpMvMultiAcc, Vbl, Vbr,
};
pub use spmv_kernels::{BlockShape, KernelImpl};
